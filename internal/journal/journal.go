// Package journal implements the physical-block write-ahead journal the base
// filesystem uses for metadata crash consistency.
//
// The RAE contained reboot (paper §3.2) "incorporates the base's crash
// recovery mechanism, such as journal replay": after an error, the rebooted
// base replays committed transactions from this journal to reach the trusted
// on-disk state S0 from which the shadow re-executes the recorded sequence.
//
// Layout inside the journal region [JournalStart, JournalStart+JournalLen):
//
//	block 0:  journal superblock (JSB) — chain tail + next expected txid
//	block 1+: tx chain, each tx = header | payload blocks... | commit block
//
// The header records the transaction id, the number of payload blocks, and
// the home location of each. The commit block repeats the id and carries a
// streaming CRC32C over all payload blocks; a transaction missing a valid
// commit block is ignored by replay (it never happened).
//
// Transactions accumulate: committing does NOT require the previous
// transaction to be checkpointed, so under fsync-heavy load the region fills
// with many live committed transactions and each commit costs exactly two
// device flushes. A checkpoint (the caller writing every live target to its
// home location and flushing) retires the whole chain at once by advancing
// the JSB — sequence number bumped past the chain, tail rewound — instead of
// zeroing the region. Replay walks the chain from the JSB's tail expecting
// strictly sequential txids starting at the JSB's sequence, which makes
// stale remnants from earlier, longer chains unreplayable.
package journal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Record magics distinguishing journal block types.
const (
	jsbMagic    = 0x4A524E53 // "JRNS"
	headerMagic = 0x4A524E48 // "JRNH"
	commitMagic = 0x4A524E43 // "JRNC"
)

// maxTargets is the most payload blocks a single transaction can carry,
// bounded by the u32 slots available in one header block.
const maxTargets = (disklayout.BlockSize - 16 - 4) / 4

// chainStart is the first chain block relative to the region start; block 0
// is the JSB. Checkpoints always rewind the tail here, so the JSB's tail
// field is redundant today but keeps the format honest about where replay
// must begin.
const chainStart = 1

// Journal manages the journal region of a device.
type Journal struct {
	dev   blockdev.Device
	start uint32 // first block of the journal region
	len   uint32 // region length in blocks

	// mu guards the persistent cursor and the live-target set. Physical
	// commits are serialized by the group-commit leader, but Checkpointed
	// and Contains may be called concurrently with a commit in flight.
	mu      sync.Mutex
	head    uint32 // next free block, relative to start
	txid    uint64 // next transaction id
	live    map[uint32]struct{}
	liveTxs int

	// Group-commit coordinator: concurrent Commit callers append to pending;
	// the first becomes leader and drains batches while followers wait on
	// their buffered error channels.
	gcMu    sync.Mutex
	pending []*commitReq
	leading bool

	// Reused scratch blocks so commit is allocation-free per transaction.
	hdrBuf, cmtBuf, jsbBuf []byte

	telCommits, telBlocks, telCheckpoints *telemetry.Counter
	telCommitLatency, telBatch            *telemetry.Histogram
}

// SetTelemetry installs commit instrumentation ("journal.*") from s.
func (j *Journal) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	j.telCommits = s.Counter("journal.commits")
	j.telBlocks = s.Counter("journal.committed_blocks")
	j.telCheckpoints = s.Counter("journal.checkpoints")
	j.telCommitLatency = s.Histogram("journal.commit.latency")
	j.telBatch = s.Histogram("journal.group.batch_size")
}

// New attaches to the journal region described by sb on dev, reading the
// journal superblock to restore the persistent cursor. The region must have
// been formatted (mkfs writes an empty JSB) or replayed; an undecodable JSB
// here means real corruption, not a torn crash write, because both Format
// and Replay leave a valid one behind.
func New(dev blockdev.Device, sb *disklayout.Superblock) (*Journal, error) {
	j := &Journal{
		dev:    dev,
		start:  sb.JournalStart,
		len:    sb.JournalLen,
		live:   make(map[uint32]struct{}),
		hdrBuf: make([]byte, disklayout.BlockSize),
		cmtBuf: make([]byte, disklayout.BlockSize),
		jsbBuf: make([]byte, disklayout.BlockSize),
	}
	raw, err := dev.ReadBlock(j.start)
	if err != nil {
		return nil, fmt.Errorf("journal: read superblock: %w", err)
	}
	tail, seq, ok := decodeJSB(raw)
	if !ok {
		return nil, fmt.Errorf("journal: invalid journal superblock: %w", fserr.ErrCorrupt)
	}
	j.head = tail
	j.txid = seq
	return j, nil
}

func decodeJSB(b []byte) (tail uint32, seq uint64, ok bool) {
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != jsbMagic ||
		le.Uint32(b[disklayout.BlockSize-4:]) != disklayout.Checksum(b[:disklayout.BlockSize-4]) {
		return 0, 0, false
	}
	tail = le.Uint32(b[4:])
	seq = le.Uint64(b[8:])
	if tail < chainStart || seq == 0 {
		return 0, 0, false
	}
	return tail, seq, true
}

// EncodeJSB serializes a journal superblock into buf (one block). Exported
// for mkfs, which must leave a valid empty JSB behind at format time.
func EncodeJSB(buf []byte, tail uint32, seq uint64) {
	le := binary.LittleEndian
	for i := range buf {
		buf[i] = 0
	}
	le.PutUint32(buf[0:], jsbMagic)
	le.PutUint32(buf[4:], tail)
	le.PutUint64(buf[8:], seq)
	le.PutUint32(buf[disklayout.BlockSize-4:], disklayout.Checksum(buf[:disklayout.BlockSize-4]))
}

// Capacity returns the number of payload blocks the largest single
// transaction can hold in an empty region.
func (j *Journal) Capacity() int {
	if j.len < chainStart+2 {
		return 0
	}
	c := int(j.len) - chainStart - 2 // JSB + header + commit
	if c > maxTargets {
		c = maxTargets
	}
	return c
}

// SpaceLeft returns how many payload blocks the next transaction can carry
// before a checkpoint is required.
func (j *Journal) SpaceLeft() int {
	j.mu.Lock()
	head := j.head
	j.mu.Unlock()
	left := int(j.len) - int(head) - 2
	if left < 0 {
		left = 0
	}
	if left > maxTargets {
		left = maxTargets
	}
	return left
}

// LiveTxs returns the number of committed transactions not yet retired by a
// checkpoint — the chain replay would apply after a crash right now.
func (j *Journal) LiveTxs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.liveTxs
}

// Contains reports whether blk is a home target of a live committed
// transaction. The base's sync path uses this to detect a freed metadata
// block reallocated as data: writing such a block home before the journal is
// checkpointed would let a crash replay stale metadata over live data, so
// the caller must checkpoint first.
func (j *Journal) Contains(blk uint32) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.live[blk]
	return ok
}

// Tx is one journal transaction under construction: a set of home-location
// block writes that must become durable atomically.
type Tx struct {
	Targets []uint32 // home block numbers
	Blocks  [][]byte // payloads, same length as Targets
}

// Add appends a block write to the transaction, replacing any earlier write
// to the same target so a transaction never carries two versions of a block.
func (t *Tx) Add(blk uint32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	for i, tgt := range t.Targets {
		if tgt == blk {
			t.Blocks[i] = cp
			return
		}
	}
	t.Targets = append(t.Targets, blk)
	t.Blocks = append(t.Blocks, cp)
}

// Len returns the number of payload blocks in the transaction.
func (t *Tx) Len() int { return len(t.Targets) }

// ErrJournalFull reports a transaction too large for the remaining region;
// the caller must checkpoint and retry.
var ErrJournalFull = fmt.Errorf("journal: region full: %w", fserr.ErrNoSpace)

// commitReq is one caller's transaction waiting for the group-commit leader.
type commitReq struct {
	tx   *Tx
	errc chan error
}

// Commit durably appends the transaction and returns once it is replay-safe:
// header and payloads are written and flushed, then the commit record is
// written and flushed — two device flushes, shared by every caller that
// coalesced into the same physical transaction. Concurrent Commit calls are
// batched by a leader/follower protocol: the first caller in becomes leader
// and commits the merged batch while later arrivals wait; a batch is bounded
// by the region's single-transaction capacity, beyond which the leader
// starts another physical transaction.
//
// After Commit returns nil the transaction stays live (replayed by any
// subsequent Replay) until Checkpointed retires it, so the caller may lazily
// write the home locations.
func (j *Journal) Commit(tx *Tx) error {
	if tx.Len() == 0 {
		return nil
	}
	if tx.Len() > maxTargets {
		return fmt.Errorf("journal: transaction of %d blocks exceeds max %d: %w",
			tx.Len(), maxTargets, fserr.ErrInvalid)
	}
	req := &commitReq{tx: tx, errc: make(chan error, 1)}
	j.gcMu.Lock()
	j.pending = append(j.pending, req)
	if j.leading {
		// A leader is committing; it will pick this request up in its next
		// batch. Wait as a follower.
		j.gcMu.Unlock()
		return <-req.errc
	}
	j.leading = true
	for len(j.pending) > 0 {
		batch := j.takeBatchLocked()
		j.gcMu.Unlock()
		err := j.commitBatch(batch)
		for _, r := range batch {
			r.errc <- err
		}
		j.gcMu.Lock()
	}
	j.leading = false
	j.gcMu.Unlock()
	return <-req.errc
}

// takeBatchLocked pops the next batch off the pending list: as many requests
// as fit one physical transaction, always at least one. Called with gcMu
// held.
func (j *Journal) takeBatchLocked() []*commitReq {
	var batch []*commitReq
	total := 0
	for len(j.pending) > 0 {
		r := j.pending[0]
		if len(batch) > 0 && total+r.tx.Len() > j.Capacity() {
			break
		}
		batch = append(batch, r)
		total += r.tx.Len()
		j.pending = j.pending[1:]
	}
	return batch
}

// commitBatch merges a batch into one physical transaction and writes it.
func (j *Journal) commitBatch(batch []*commitReq) error {
	t := telemetry.StartTimer(j.telCommitLatency)
	defer t.Stop()

	// Merge, later writes to the same target winning, preserving arrival
	// order otherwise. Payloads were already copied by Tx.Add.
	var targets []uint32
	var blocks [][]byte
	idx := make(map[uint32]int)
	for _, r := range batch {
		for i, tgt := range r.tx.Targets {
			data := r.tx.Blocks[i]
			if len(data) != disklayout.BlockSize {
				return fmt.Errorf("journal: payload for block %d is %d bytes: %w",
					tgt, len(data), fserr.ErrInvalid)
			}
			if at, ok := idx[tgt]; ok {
				blocks[at] = data
				continue
			}
			idx[tgt] = len(targets)
			targets = append(targets, tgt)
			blocks = append(blocks, data)
		}
	}
	n := uint32(len(targets))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.head+n+2 > j.len {
		return ErrJournalFull
	}
	le := binary.LittleEndian

	// Header block (reused scratch; the CRC covers exactly what we wrote).
	hdr := j.hdrBuf
	le.PutUint32(hdr[0:], headerMagic)
	le.PutUint64(hdr[4:], j.txid)
	le.PutUint32(hdr[12:], n)
	for i, tgt := range targets {
		le.PutUint32(hdr[16+4*i:], tgt)
	}
	le.PutUint32(hdr[disklayout.BlockSize-4:], disklayout.Checksum(hdr[:disklayout.BlockSize-4]))

	// Header and payloads overlap across queue workers when the device
	// supports async submission; the flush below is the ordering point.
	aw, _ := j.dev.(blockdev.AsyncWriter)
	var reqs []*blockdev.Request
	write := func(blk uint32, data []byte) error {
		if aw != nil {
			reqs = append(reqs, aw.WriteAsync(blk, data))
			return nil
		}
		return j.dev.WriteBlock(blk, data)
	}
	if err := write(j.start+j.head, hdr); err != nil {
		return fmt.Errorf("journal: write header: %w", err)
	}
	payloadCRC := uint32(0)
	for i, data := range blocks {
		if err := write(j.start+j.head+1+uint32(i), data); err != nil {
			return fmt.Errorf("journal: write payload %d: %w", i, err)
		}
		payloadCRC = disklayout.ChecksumUpdate(payloadCRC, data)
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			return fmt.Errorf("journal: write tx blocks: %w", err)
		}
	}
	if err := j.dev.Flush(); err != nil {
		return fmt.Errorf("journal: flush before commit record: %w", err)
	}

	// Commit block. Its presence with a matching checksum is the commit point.
	cmt := j.cmtBuf
	le.PutUint32(cmt[0:], commitMagic)
	le.PutUint64(cmt[4:], j.txid)
	le.PutUint32(cmt[12:], n)
	le.PutUint32(cmt[16:], payloadCRC)
	le.PutUint32(cmt[disklayout.BlockSize-4:], disklayout.Checksum(cmt[:disklayout.BlockSize-4]))
	if err := j.dev.WriteBlock(j.start+j.head+1+n, cmt); err != nil {
		return fmt.Errorf("journal: write commit record: %w", err)
	}
	if err := j.dev.Flush(); err != nil {
		return fmt.Errorf("journal: flush commit record: %w", err)
	}

	j.head += n + 2
	j.txid++
	j.liveTxs++
	for _, tgt := range targets {
		j.live[tgt] = struct{}{}
	}
	j.telCommits.Inc()
	j.telBlocks.Add(int64(n))
	j.telBatch.ObserveNs(int64(len(batch)))
	return nil
}

// Checkpointed retires the whole live chain after the caller has written
// every live target to its home location and flushed: the JSB's sequence is
// advanced past the chain and the tail rewound, making the old records
// unreplayable without touching them. With no live transactions it is a
// no-op — deliberately, so a torn JSB write can only ever be observed while
// a non-empty chain (which replay's fallback scan finds from block 1) is
// still intact on disk.
func (j *Journal) Checkpointed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.liveTxs == 0 && j.head == chainStart {
		return nil
	}
	EncodeJSB(j.jsbBuf, chainStart, j.txid)
	if err := j.dev.WriteBlock(j.start, j.jsbBuf); err != nil {
		return fmt.Errorf("journal: checkpoint superblock: %w", err)
	}
	if err := j.dev.Flush(); err != nil {
		return fmt.Errorf("journal: checkpoint flush: %w", err)
	}
	j.head = chainStart
	j.liveTxs = 0
	j.live = make(map[uint32]struct{})
	j.telCheckpoints.Inc()
	return nil
}

// ReplayStats reports what Replay found and did.
type ReplayStats struct {
	Committed   int // transactions replayed
	Uncommitted int // trailing transactions discarded (no valid commit record)
	Blocks      int // home-location blocks rewritten
}

// scannedTx is one fully committed transaction found by scanChain: the home
// locations and the payloads destined for them, in intra-tx order.
type scannedTx struct {
	txid     uint64
	targets  []uint32
	payloads [][]byte
}

// scanChain walks the transaction chain from the JSB's tail and collects
// every fully committed transaction in order, without writing anything. It is
// the read-only core shared by Replay (which applies the transactions to
// their home locations) and CommittedOverlay (which exposes them as a logical
// view so a concurrent reader needs no replay ordering).
//
// Transactions must carry strictly sequential txids starting at the JSB's
// sequence; anything else is a stale remnant of an earlier, longer chain and
// is void. A torn JSB (possible only if the crash interrupted a checkpoint's
// JSB write) falls back to scanning from block 1 accepting the first txid
// found — safe, because at any moment a checkpoint advances the JSB, the
// chain it is retiring is exactly the committed state and re-applying it is
// idempotent.
func scanChain(dev blockdev.Device, sb *disklayout.Superblock) (txs []scannedTx, st ReplayStats, expect uint64, wildcard bool, err error) {
	le := binary.LittleEndian

	raw, err := dev.ReadBlock(sb.JournalStart)
	if err != nil {
		return nil, st, 0, false, fmt.Errorf("journal: replay read superblock: %w", err)
	}
	pos, expect, ok := decodeJSB(raw)
	wildcard = !ok
	if wildcard {
		pos, expect = chainStart, 0
	}

	jStart, jEnd := sb.JournalStart, sb.JournalStart+sb.JournalLen
	for pos+2 <= sb.JournalLen {
		hdrBlk, err := dev.ReadBlock(sb.JournalStart + pos)
		if err != nil {
			return nil, st, 0, false, fmt.Errorf("journal: replay read header at +%d: %w", pos, err)
		}
		if le.Uint32(hdrBlk[0:]) != headerMagic ||
			le.Uint32(hdrBlk[disklayout.BlockSize-4:]) != disklayout.Checksum(hdrBlk[:disklayout.BlockSize-4]) {
			break // end of chain (or torn header: treated as never-written)
		}
		txid := le.Uint64(hdrBlk[4:])
		n := le.Uint32(hdrBlk[12:])
		if wildcard && st.Committed == 0 {
			expect = txid // adopt the chain's first txid
		}
		if txid != expect || n == 0 || uint64(n) > uint64(maxTargets) || pos+n+2 > sb.JournalLen {
			st.Uncommitted++
			break // out-of-sequence remnant or impossible header: chain ends
		}
		// Read payloads, folding them into the streaming checksum.
		payloads := make([][]byte, n)
		payloadCRC := uint32(0)
		readOK := true
		for i := uint32(0); i < n; i++ {
			b, err := dev.ReadBlock(sb.JournalStart + pos + 1 + i)
			if err != nil {
				readOK = false
				break
			}
			payloads[i] = b
			payloadCRC = disklayout.ChecksumUpdate(payloadCRC, b)
		}
		if !readOK {
			st.Uncommitted++
			break
		}
		cmtBlk, err := dev.ReadBlock(sb.JournalStart + pos + 1 + n)
		if err != nil ||
			le.Uint32(cmtBlk[0:]) != commitMagic ||
			le.Uint32(cmtBlk[disklayout.BlockSize-4:]) != disklayout.Checksum(cmtBlk[:disklayout.BlockSize-4]) ||
			le.Uint64(cmtBlk[4:]) != txid ||
			le.Uint32(cmtBlk[12:]) != n ||
			le.Uint32(cmtBlk[16:]) != payloadCRC {
			st.Uncommitted++
			break // torn or absent commit: this tx and everything after it is void
		}
		// Committed. Block 0 is a legal target (the sync path journals
		// superblock updates); the journal region itself and anything past the
		// device are not.
		targets := make([]uint32, n)
		for i := uint32(0); i < n; i++ {
			targets[i] = le.Uint32(hdrBlk[16+4*i:])
			if targets[i] >= sb.NumBlocks || (targets[i] >= jStart && targets[i] < jEnd) {
				return nil, st, 0, false, fmt.Errorf("journal: committed tx %d targets block %d outside filesystem: %w",
					txid, targets[i], fserr.ErrCorrupt)
			}
		}
		txs = append(txs, scannedTx{txid: txid, targets: targets, payloads: payloads})
		st.Committed++
		expect = txid + 1
		pos += n + 2
	}
	return txs, st, expect, wildcard, nil
}

// CommittedOverlay scans the chain read-only and returns the logical
// home-location contents of every committed transaction, later transactions
// overriding earlier ones. Layered over the raw device (blockdev.NewOverlay)
// this yields exactly the post-replay image without a single device write —
// the independent read-only view the pipelined recovery engine hands the
// shadow so it can start re-executing while the contained reboot's physical
// replay is still running.
func CommittedOverlay(dev blockdev.Device, sb *disklayout.Superblock) (map[uint32][]byte, ReplayStats, error) {
	txs, st, _, _, err := scanChain(dev, sb)
	if err != nil {
		return nil, st, err
	}
	over := make(map[uint32][]byte)
	for _, tx := range txs {
		for i, blk := range tx.targets {
			over[blk] = tx.payloads[i]
		}
	}
	return over, st, nil
}

// Replay walks the transaction chain from the JSB's tail, re-applies every
// fully committed transaction to its home locations in order, discards the
// uncommitted or corrupt tail, flushes, and writes a fresh JSB retiring what
// it applied. It is idempotent: replaying twice applies the same writes.
// (Chain-walk semantics are documented on scanChain.)
func Replay(dev blockdev.Device, sb *disklayout.Superblock) (ReplayStats, error) {
	txs, st, expect, wildcard, err := scanChain(dev, sb)
	if err != nil {
		return st, err
	}
	for _, tx := range txs {
		for i, blk := range tx.targets {
			if err := dev.WriteBlock(blk, tx.payloads[i]); err != nil {
				return st, fmt.Errorf("journal: replay write block %d: %w", blk, err)
			}
			st.Blocks++
		}
	}
	if st.Committed > 0 {
		if err := dev.Flush(); err != nil {
			return st, fmt.Errorf("journal: replay flush: %w", err)
		}
	}
	// Retire what was applied. Skip the rewrite when it would change nothing
	// so an already-valid JSB is never exposed to a torn write needlessly.
	if st.Committed > 0 || wildcard {
		if expect == 0 {
			expect = 1 // torn JSB over an empty chain: fresh region
		}
		jsb := make([]byte, disklayout.BlockSize)
		EncodeJSB(jsb, chainStart, expect)
		if err := dev.WriteBlock(sb.JournalStart, jsb); err != nil {
			return st, fmt.Errorf("journal: replay superblock: %w", err)
		}
		if err := dev.Flush(); err != nil {
			return st, fmt.Errorf("journal: replay superblock flush: %w", err)
		}
	}
	return st, nil
}
