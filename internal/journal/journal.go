// Package journal implements the physical-block write-ahead journal the base
// filesystem uses for metadata crash consistency.
//
// The RAE contained reboot (paper §3.2) "incorporates the base's crash
// recovery mechanism, such as journal replay": after an error, the rebooted
// base replays committed transactions from this journal to reach the trusted
// on-disk state S0 from which the shadow re-executes the recorded sequence.
//
// Layout inside the journal region [JournalStart, JournalStart+JournalLen):
//
//	tx := header block | payload blocks... | commit block
//
// The header records the transaction id, the number of payload blocks, and
// the home location of each. The commit block repeats the id and carries a
// CRC32C over all payload blocks; a transaction missing a valid commit block
// is ignored by replay (it never happened). Transactions are written
// sequentially and the region is reset (head rewound) after a checkpoint.
package journal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Record magics distinguishing journal block types.
const (
	headerMagic = 0x4A524E48 // "JRNH"
	commitMagic = 0x4A524E43 // "JRNC"
)

// maxTargets is the most payload blocks a single transaction can carry,
// bounded by the u32 slots available in one header block.
const maxTargets = (disklayout.BlockSize - 16 - 4) / 4

// Journal manages the journal region of a device.
type Journal struct {
	dev   blockdev.Device
	start uint32 // first block of the journal region
	len   uint32 // region length in blocks
	head  uint32 // next free block, relative to start
	txid  uint64 // next transaction id

	telCommits, telBlocks *telemetry.Counter
	telCommitLatency      *telemetry.Histogram
}

// SetTelemetry installs commit instrumentation ("journal.*") from s.
func (j *Journal) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	j.telCommits = s.Counter("journal.commits")
	j.telBlocks = s.Counter("journal.committed_blocks")
	j.telCommitLatency = s.Histogram("journal.commit.latency")
}

// New attaches to the journal region described by sb on dev. It does not
// read or replay; call Replay for that.
func New(dev blockdev.Device, sb *disklayout.Superblock) *Journal {
	return &Journal{dev: dev, start: sb.JournalStart, len: sb.JournalLen, txid: 1}
}

// Capacity returns the number of payload blocks the largest single
// transaction can hold given the remaining region space.
func (j *Journal) Capacity() int {
	if j.len < 2 {
		return 0
	}
	c := int(j.len) - 2 // header + commit
	if c > maxTargets {
		c = maxTargets
	}
	return c
}

// SpaceLeft returns how many payload blocks can still be appended before a
// checkpoint is required.
func (j *Journal) SpaceLeft() int {
	used := int(j.head)
	left := int(j.len) - used - 2
	if left < 0 {
		left = 0
	}
	if left > maxTargets {
		left = maxTargets
	}
	return left
}

// Tx is one journal transaction under construction: a set of home-location
// block writes that must become durable atomically.
type Tx struct {
	Targets []uint32 // home block numbers
	Blocks  [][]byte // payloads, same length as Targets
}

// Add appends a block write to the transaction, replacing any earlier write
// to the same target so a transaction never carries two versions of a block.
func (t *Tx) Add(blk uint32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	for i, tgt := range t.Targets {
		if tgt == blk {
			t.Blocks[i] = cp
			return
		}
	}
	t.Targets = append(t.Targets, blk)
	t.Blocks = append(t.Blocks, cp)
}

// Len returns the number of payload blocks in the transaction.
func (t *Tx) Len() int { return len(t.Targets) }

// ErrJournalFull reports a transaction too large for the remaining region;
// the caller must checkpoint and retry.
var ErrJournalFull = fmt.Errorf("journal: region full: %w", fserr.ErrNoSpace)

// Commit durably appends the transaction: payload blocks and header first,
// flush, then the commit block, then flush again. After Commit returns nil
// the transaction will be replayed by any subsequent Replay until the next
// Reset, so the caller may lazily write the home locations.
func (j *Journal) Commit(tx *Tx) error {
	n := uint32(len(tx.Targets))
	if n == 0 {
		return nil
	}
	t := telemetry.StartTimer(j.telCommitLatency)
	defer t.Stop()
	if int(n) > maxTargets {
		return fmt.Errorf("journal: transaction of %d blocks exceeds max %d: %w", n, maxTargets, fserr.ErrInvalid)
	}
	if j.head+n+2 > j.len {
		return ErrJournalFull
	}
	le := binary.LittleEndian

	// Header block.
	hdr := make([]byte, disklayout.BlockSize)
	le.PutUint32(hdr[0:], headerMagic)
	le.PutUint64(hdr[4:], j.txid)
	le.PutUint32(hdr[12:], n)
	for i, tgt := range tx.Targets {
		le.PutUint32(hdr[16+4*i:], tgt)
	}
	le.PutUint32(hdr[disklayout.BlockSize-4:], disklayout.Checksum(hdr[:disklayout.BlockSize-4]))
	if err := j.dev.WriteBlock(j.start+j.head, hdr); err != nil {
		return fmt.Errorf("journal: write header: %w", err)
	}

	// Payload blocks, checksummed together for the commit record.
	payloadCRC := uint32(0)
	for i, data := range tx.Blocks {
		if len(data) != disklayout.BlockSize {
			return fmt.Errorf("journal: payload %d is %d bytes: %w", i, len(data), fserr.ErrInvalid)
		}
		if err := j.dev.WriteBlock(j.start+j.head+1+uint32(i), data); err != nil {
			return fmt.Errorf("journal: write payload %d: %w", i, err)
		}
		payloadCRC = crcCombine(payloadCRC, data)
	}
	if err := j.dev.Flush(); err != nil {
		return fmt.Errorf("journal: flush before commit record: %w", err)
	}

	// Commit block. Its presence with a matching checksum is the commit point.
	cmt := make([]byte, disklayout.BlockSize)
	le.PutUint32(cmt[0:], commitMagic)
	le.PutUint64(cmt[4:], j.txid)
	le.PutUint32(cmt[12:], n)
	le.PutUint32(cmt[16:], payloadCRC)
	le.PutUint32(cmt[disklayout.BlockSize-4:], disklayout.Checksum(cmt[:disklayout.BlockSize-4]))
	if err := j.dev.WriteBlock(j.start+j.head+1+n, cmt); err != nil {
		return fmt.Errorf("journal: write commit record: %w", err)
	}
	if err := j.dev.Flush(); err != nil {
		return fmt.Errorf("journal: flush commit record: %w", err)
	}

	j.head += n + 2
	j.txid++
	j.telCommits.Inc()
	j.telBlocks.Add(int64(n))
	return nil
}

// crcCombine folds a block into a running checksum. Chaining per-block CRCs
// through Checksum keeps replay simple (no need to buffer all payloads).
func crcCombine(acc uint32, block []byte) uint32 {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], acc)
	return disklayout.Checksum(append(hdr[:], block...))
}

// Reset marks the journal empty after a checkpoint has written all committed
// home locations and flushed. It zeroes the first header slot so stale
// transactions are not replayed.
func (j *Journal) Reset() error {
	zero := make([]byte, disklayout.BlockSize)
	if err := j.dev.WriteBlock(j.start, zero); err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	if err := j.dev.Flush(); err != nil {
		return fmt.Errorf("journal: flush reset: %w", err)
	}
	j.head = 0
	return nil
}

// ReplayStats reports what Replay found and did.
type ReplayStats struct {
	Committed   int // transactions replayed
	Uncommitted int // trailing transactions discarded (no valid commit record)
	Blocks      int // home-location blocks rewritten
}

// Replay scans the journal region from the start, re-applies every fully
// committed transaction to its home locations, discards the first
// uncommitted or corrupt tail, flushes, and resets the journal. It is
// idempotent: replaying twice applies the same writes.
func Replay(dev blockdev.Device, sb *disklayout.Superblock) (ReplayStats, error) {
	var st ReplayStats
	le := binary.LittleEndian
	j := New(dev, sb)
	pos := uint32(0)
	expect := uint64(0) // txids must be strictly increasing
	for pos+2 <= sb.JournalLen {
		hdrBlk, err := dev.ReadBlock(sb.JournalStart + pos)
		if err != nil {
			return st, fmt.Errorf("journal: replay read header at +%d: %w", pos, err)
		}
		if le.Uint32(hdrBlk[0:]) != headerMagic ||
			le.Uint32(hdrBlk[disklayout.BlockSize-4:]) != disklayout.Checksum(hdrBlk[:disklayout.BlockSize-4]) {
			break // end of journal (or torn header: treated as never-written)
		}
		txid := le.Uint64(hdrBlk[4:])
		n := le.Uint32(hdrBlk[12:])
		if txid <= expect || n == 0 || uint64(n) > uint64(maxTargets) || pos+n+2 > sb.JournalLen {
			st.Uncommitted++
			break
		}
		// Read payloads and compute their checksum.
		payloads := make([][]byte, n)
		payloadCRC := uint32(0)
		ok := true
		for i := uint32(0); i < n; i++ {
			b, err := dev.ReadBlock(sb.JournalStart + pos + 1 + i)
			if err != nil {
				ok = false
				break
			}
			payloads[i] = b
			payloadCRC = crcCombine(payloadCRC, b)
		}
		if !ok {
			st.Uncommitted++
			break
		}
		cmtBlk, err := dev.ReadBlock(sb.JournalStart + pos + 1 + n)
		if err != nil ||
			le.Uint32(cmtBlk[0:]) != commitMagic ||
			le.Uint32(cmtBlk[disklayout.BlockSize-4:]) != disklayout.Checksum(cmtBlk[:disklayout.BlockSize-4]) ||
			le.Uint64(cmtBlk[4:]) != txid ||
			le.Uint32(cmtBlk[12:]) != n ||
			le.Uint32(cmtBlk[16:]) != payloadCRC {
			st.Uncommitted++
			break // torn or absent commit: this tx and everything after it is void
		}
		// Committed: apply to home locations.
		targets := make([]uint32, n)
		for i := uint32(0); i < n; i++ {
			targets[i] = le.Uint32(hdrBlk[16+4*i:])
			if targets[i] >= sb.NumBlocks || targets[i] == 0 {
				return st, fmt.Errorf("journal: committed tx %d targets block %d outside device: %w",
					txid, targets[i], fserr.ErrCorrupt)
			}
		}
		for i := uint32(0); i < n; i++ {
			if err := dev.WriteBlock(targets[i], payloads[i]); err != nil {
				return st, fmt.Errorf("journal: replay write block %d: %w", targets[i], err)
			}
			st.Blocks++
		}
		st.Committed++
		expect = txid
		pos += n + 2
	}
	if st.Committed > 0 || st.Uncommitted > 0 {
		if err := dev.Flush(); err != nil {
			return st, fmt.Errorf("journal: replay flush: %w", err)
		}
	}
	if err := j.Reset(); err != nil {
		return st, err
	}
	return st, nil
}
