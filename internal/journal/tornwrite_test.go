package journal

import (
	"bytes"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

// TestCommitAtomicUnderTornWrites drives the commit path with the device
// tearing every write in half: either the transaction's commit record
// survives intact (and replay applies the whole transaction) or it does not
// (and replay applies none of it). No run may apply a partial transaction.
func TestCommitAtomicUnderTornWrites(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sb, err := disklayout.Geometry(1024, 256, 64)
		if err != nil {
			t.Fatal(err)
		}
		dev := blockdev.NewMem(sb.NumBlocks)
		if err := dev.WriteBlock(0, disklayout.EncodeSuperblock(sb)); err != nil {
			t.Fatal(err)
		}
		formatJSB(t, dev, sb)
		// Pre-fill targets with a known old value.
		old := bytes.Repeat([]byte{0xEE}, disklayout.BlockSize)
		for k := uint32(0); k < 4; k++ {
			if err := dev.WriteBlock(sb.DataStart+k, old); err != nil {
				t.Fatal(err)
			}
		}
		plan := blockdev.NewFaultPlan(seed)
		plan.TornWriteProb = 0.4
		dev.SetFaults(plan)
		j := mustNew(t, dev, sb)
		tx := &Tx{}
		newVal := bytes.Repeat([]byte{0xAA}, disklayout.BlockSize)
		for k := uint32(0); k < 4; k++ {
			tx.Add(sb.DataStart+k, newVal)
		}
		_ = j.Commit(tx) // may "succeed" while torn underneath
		dev.SetFaults(nil)

		if _, err := Replay(dev, sb); err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		// All-or-nothing: targets are either all old or all new.
		var newCount int
		for k := uint32(0); k < 4; k++ {
			b, err := dev.ReadBlock(sb.DataStart + k)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case bytes.Equal(b, newVal):
				newCount++
			case bytes.Equal(b, old):
			default:
				t.Fatalf("seed %d: target %d holds a torn mix", seed, k)
			}
		}
		if newCount != 0 && newCount != 4 {
			t.Fatalf("seed %d: partial transaction applied: %d/4 targets new", seed, newCount)
		}
	}
}
