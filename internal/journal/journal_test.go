package journal

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

func setup(t *testing.T) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	sb, err := disklayout.Geometry(1024, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMem(sb.NumBlocks)
	if err := dev.WriteBlock(0, disklayout.EncodeSuperblock(sb)); err != nil {
		t.Fatal(err)
	}
	formatJSB(t, dev, sb)
	return dev, sb
}

func formatJSB(t *testing.T, dev blockdev.Device, sb *disklayout.Superblock) {
	t.Helper()
	jsb := make([]byte, disklayout.BlockSize)
	EncodeJSB(jsb, 1, 1)
	if err := dev.WriteBlock(sb.JournalStart, jsb); err != nil {
		t.Fatal(err)
	}
}

func mustNew(t *testing.T, dev blockdev.Device, sb *disklayout.Superblock) *Journal {
	t.Helper()
	j, err := New(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func fill(b byte) []byte {
	blk := make([]byte, disklayout.BlockSize)
	for i := range blk {
		blk[i] = b
	}
	return blk
}

func TestNewRejectsUnformattedRegion(t *testing.T) {
	sb, err := disklayout.Geometry(1024, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMem(sb.NumBlocks)
	if _, err := New(dev, sb); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("New on zeroed region = %v, want ErrCorrupt", err)
	}
}

func TestCommitThenReplayAppliesHomeWrites(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	t1, t2 := sb.DataStart, sb.DataStart+1
	tx.Add(t1, fill(0xA1))
	tx.Add(t2, fill(0xA2))
	if err := j.Commit(tx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Home locations untouched until checkpoint/replay (lazy write-back).
	got, _ := dev.ReadBlock(t1)
	if got[0] == 0xA1 {
		t.Fatal("commit eagerly wrote home location")
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Committed != 1 || st.Blocks != 2 || st.Uncommitted != 0 {
		t.Errorf("stats = %+v", st)
	}
	got, _ = dev.ReadBlock(t1)
	if !bytes.Equal(got, fill(0xA1)) {
		t.Error("replay did not write home block 1")
	}
	got, _ = dev.ReadBlock(t2)
	if !bytes.Equal(got, fill(0xA2)) {
		t.Error("replay did not write home block 2")
	}
}

// TestMultipleLiveTxsReplayInOrder is the load-bearing property of the
// deferred-checkpoint design: many committed transactions accumulate in the
// region and a crash replays all of them, in commit order.
func TestMultipleLiveTxsReplayInOrder(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	const txs = 6
	for i := 0; i < txs; i++ {
		tx := &Tx{}
		tx.Add(sb.DataStart, fill(byte(i+1)))                // same block every tx
		tx.Add(sb.DataStart+1+uint32(i), fill(0xB0+byte(i))) // distinct block per tx
		if err := j.Commit(tx); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if j.LiveTxs() != txs {
		t.Fatalf("LiveTxs = %d, want %d", j.LiveTxs(), txs)
	}
	crash := dev.Snapshot()
	st, err := Replay(crash, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != txs {
		t.Fatalf("replayed %d txs, want %d (stats %+v)", st.Committed, txs, st)
	}
	// The re-written block holds the LAST committed version.
	got, _ := crash.ReadBlock(sb.DataStart)
	if got[0] != txs {
		t.Errorf("block replayed out of order: got version %d, want %d", got[0], txs)
	}
	for i := 0; i < txs; i++ {
		got, _ := crash.ReadBlock(sb.DataStart + 1 + uint32(i))
		if got[0] != 0xB0+byte(i) {
			t.Errorf("tx %d home write missing", i)
		}
	}
}

func TestCheckpointedRetiresChain(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	before := j.SpaceLeft()
	for i := 0; i < 3; i++ {
		tx := &Tx{}
		tx.Add(sb.DataStart+uint32(i), fill(byte(i+1)))
		if err := j.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	if !j.Contains(sb.DataStart) {
		t.Error("live target not tracked")
	}
	if err := j.Checkpointed(); err != nil {
		t.Fatal(err)
	}
	if j.LiveTxs() != 0 || j.Contains(sb.DataStart) {
		t.Error("checkpoint did not clear live state")
	}
	if j.SpaceLeft() != before {
		t.Errorf("checkpoint did not reclaim space: %d vs %d", j.SpaceLeft(), before)
	}
	// The retired chain must not replay, even though its records are intact.
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("replayed %d retired transactions", st.Committed)
	}
}

// TestStaleRemnantsUnreplayable: after a checkpoint, a new shorter chain is
// written over the head of the old one; the old transactions' intact records
// beyond the new chain must not replay (their txids are out of sequence).
func TestStaleRemnantsUnreplayable(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	// Long chain: three 2-block txs.
	for i := 0; i < 3; i++ {
		tx := &Tx{}
		tx.Add(sb.DataStart+uint32(2*i), fill(0x10+byte(i)))
		tx.Add(sb.DataStart+uint32(2*i+1), fill(0x20+byte(i)))
		if err := j.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Checkpointed(); err != nil {
		t.Fatal(err)
	}
	// Zero the checkpointed homes so a spurious replay would be visible.
	for i := uint32(0); i < 6; i++ {
		if err := dev.WriteBlock(sb.DataStart+i, fill(0)); err != nil {
			t.Fatal(err)
		}
	}
	// Short chain: one 1-block tx. Old tx records beyond it remain on disk.
	tx := &Tx{}
	tx.Add(sb.DataStart+10, fill(0xAB))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev.Snapshot(), sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 {
		t.Fatalf("replayed %d txs, want only the live one (stats %+v)", st.Committed, st)
	}
}

// TestTornJSBFallsBackToScan: a crash mid-checkpoint can tear the journal
// superblock; replay must still find and apply the chain it was retiring.
func TestTornJSBFallsBackToScan(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(0x77))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Tear the JSB (as if the checkpoint's advance write crashed halfway).
	if err := dev.CorruptBlock(sb.JournalStart, 4, 0xFF); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 {
		t.Fatalf("fallback scan replayed %d txs, want 1", st.Committed)
	}
	got, _ := dev.ReadBlock(sb.DataStart)
	if got[0] != 0x77 {
		t.Error("fallback replay lost the committed write")
	}
	// Replay repaired the JSB: a fresh journal attaches and commits.
	j2 := mustNew(t, dev, sb)
	tx2 := &Tx{}
	tx2.Add(sb.DataStart+1, fill(0x78))
	if err := j2.Commit(tx2); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCoalescesFlushes: N concurrent committers must share flush
// pairs instead of paying two device flushes each, and every write must
// still be replayable.
func TestGroupCommitCoalescesFlushes(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	// Give writes a service time so followers genuinely pile up while the
	// leader's flush pair is in flight.
	plan := blockdev.NewFaultPlan(1)
	plan.WriteLatency = time.Millisecond
	dev.SetFaults(plan)
	const workers = 8
	before := dev.Stats().Snapshot().Flushes
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := &Tx{}
			tx.Add(sb.DataStart+uint32(w), fill(0x40+byte(w)))
			<-start
			errs[w] = j.Commit(tx)
		}(w)
	}
	close(start)
	wg.Wait()
	dev.SetFaults(nil)
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	flushes := dev.Stats().Snapshot().Flushes - before
	if flushes >= 2*workers {
		t.Errorf("no coalescing: %d flushes for %d concurrent commits", flushes, workers)
	}
	crash := dev.Snapshot()
	st, err := Replay(crash, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != workers {
		t.Fatalf("replay applied %d blocks, want %d", st.Blocks, workers)
	}
	for w := uint32(0); w < workers; w++ {
		got, _ := crash.ReadBlock(sb.DataStart + w)
		if got[0] != 0x40+byte(w) {
			t.Errorf("worker %d write lost", w)
		}
	}
}

// nullDev discards writes and serves only the journal superblock, so a
// memory profile of Commit sees the journal's own allocations and not the
// in-memory device copying blocks.
type nullDev struct {
	jsbBlk uint32
	jsb    []byte
	n      uint32
}

func (d *nullDev) ReadBlock(blk uint32) ([]byte, error) {
	if blk == d.jsbBlk {
		return d.jsb, nil
	}
	return make([]byte, disklayout.BlockSize), nil
}
func (d *nullDev) WriteBlock(blk uint32, data []byte) error { return nil }
func (d *nullDev) Flush() error                             { return nil }
func (d *nullDev) NumBlocks() uint32                        { return d.n }

// TestCommitAllocationBounded is the regression test for the old crcCombine,
// which concatenated every 4 KiB payload into a fresh buffer per block: a
// 16-block commit allocated >64 KiB just for checksumming. The streaming
// CRC32C commit path must stay well under one payload's worth of garbage.
func TestCommitAllocationBounded(t *testing.T) {
	sb, err := disklayout.Geometry(1024, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	jsb := make([]byte, disklayout.BlockSize)
	EncodeJSB(jsb, 1, 1)
	dev := &nullDev{jsbBlk: sb.JournalStart, jsb: jsb, n: sb.NumBlocks}
	j, err := New(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	const payloads = 16
	tx := &Tx{}
	for i := uint32(0); i < payloads; i++ {
		tx.Add(sb.DataStart+i, fill(byte(i)))
	}
	commit := func() {
		if err := j.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if err := j.Checkpointed(); err != nil {
			t.Fatal(err)
		}
	}
	commit() // warm up lazily initialized state
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 32
	for i := 0; i < rounds; i++ {
		commit()
	}
	runtime.ReadMemStats(&after)
	perCommit := (after.TotalAlloc - before.TotalAlloc) / rounds
	// Bookkeeping (batch list, merge map, error channel) is a few KiB; the
	// old per-block concatenation alone was payloads*(BlockSize+4) ≈ 66 KiB.
	if perCommit > 16*1024 {
		t.Errorf("commit of %d blocks allocates %d bytes; checksumming is not streaming", payloads, perCommit)
	}
}

func TestTxAddDeduplicatesTargets(t *testing.T) {
	tx := &Tx{}
	tx.Add(100, fill(1))
	tx.Add(101, fill(2))
	tx.Add(100, fill(3)) // replaces the first write
	if tx.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tx.Len())
	}
	if tx.Blocks[0][0] != 3 {
		t.Error("duplicate Add did not replace payload")
	}
}

func TestTxAddCopiesPayload(t *testing.T) {
	tx := &Tx{}
	buf := fill(7)
	tx.Add(100, buf)
	buf[0] = 99
	if tx.Blocks[0][0] != 7 {
		t.Error("Tx aliases the caller's buffer")
	}
}

func TestReplayEmptyJournal(t *testing.T) {
	dev, sb := setup(t)
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Committed != 0 || st.Uncommitted != 0 || st.Blocks != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplayIsIdempotent(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(0x42))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Snapshot the device right after commit: a crash here, replayed twice.
	crash := dev.Snapshot()
	if _, err := Replay(crash, sb); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(crash, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("second replay found %d transactions; retirement failed", st.Committed)
	}
	got, _ := crash.ReadBlock(sb.DataStart)
	if !bytes.Equal(got, fill(0x42)) {
		t.Error("home write lost after double replay")
	}
}

func TestReplayIgnoresUncommittedTail(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx1 := &Tx{}
	tx1.Add(sb.DataStart, fill(1))
	if err := j.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	tx2 := &Tx{}
	tx2.Add(sb.DataStart+1, fill(2))
	if err := j.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	// Tear tx2's commit record. The chain starts at +1 (the JSB is +0):
	// tx1 occupies [+1,+4), tx2 [+4,+7); commit of tx2 at +6.
	if err := dev.CorruptBlock(sb.JournalStart+6, 100, 0xFF); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 || st.Uncommitted != 1 {
		t.Errorf("stats = %+v, want 1 committed + 1 uncommitted", st)
	}
	got, _ := dev.ReadBlock(sb.DataStart)
	if got[0] != 1 {
		t.Error("committed tx1 not applied")
	}
	got, _ = dev.ReadBlock(sb.DataStart + 1)
	if got[0] == 2 {
		t.Error("torn tx2 was applied")
	}
}

func TestReplayStopsOnTornHeader(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(5))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// First header of the chain sits at +1 (+0 is the JSB).
	if err := dev.CorruptBlock(sb.JournalStart+1, 8, 0x01); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("replayed %d transactions through a torn header", st.Committed)
	}
}

func TestReplayRejectsOutOfRangeTarget(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	tx.Add(sb.NumBlocks-1, fill(1)) // legal
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Corrupting the target list breaks the header checksum, so replay treats
	// it as a torn header rather than writing out of range. To exercise the
	// out-of-range guard we must re-checksum — simulate a malicious journal by
	// rewriting a committed header with a bad target but a valid CRC.
	rewriteTarget(t, dev, sb, 0xFFFFFFFF)
	if _, err := Replay(dev, sb); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("Replay = %v, want ErrCorrupt", err)
	}
}

// TestReplayRejectsJournalRegionTarget: a committed transaction must never
// target the journal region itself — replaying it would rewrite the log
// being walked.
func TestReplayRejectsJournalRegionTarget(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(1))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	rewriteTarget(t, dev, sb, sb.JournalStart+2)
	if _, err := Replay(dev, sb); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("Replay = %v, want ErrCorrupt", err)
	}
}

// TestReplayAcceptsSuperblockTarget: block 0 is a legal target — the sync
// path journals superblock clock updates instead of rewriting it in place.
func TestReplayAcceptsSuperblockTarget(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	sb2 := *sb
	sb2.LastClock = 12345
	tx := &Tx{}
	tx.Add(0, disklayout.EncodeSuperblock(&sb2))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Committed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	raw, _ := dev.ReadBlock(0)
	got, err := disklayout.DecodeSuperblock(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastClock != 12345 {
		t.Errorf("LastClock = %d after replay, want 12345", got.LastClock)
	}
}

// rewriteTarget rewrites the first chain header's first target with a valid
// CRC, simulating a corrupted-but-checksummed journal.
func rewriteTarget(t *testing.T, dev blockdev.Device, sb *disklayout.Superblock, target uint32) {
	t.Helper()
	hdr, err := dev.ReadBlock(sb.JournalStart + 1)
	if err != nil {
		t.Fatal(err)
	}
	hdr[16] = byte(target)
	hdr[17] = byte(target >> 8)
	hdr[18] = byte(target >> 16)
	hdr[19] = byte(target >> 24)
	crc := disklayout.Checksum(hdr[:disklayout.BlockSize-4])
	hdr[disklayout.BlockSize-4] = byte(crc)
	hdr[disklayout.BlockSize-3] = byte(crc >> 8)
	hdr[disklayout.BlockSize-2] = byte(crc >> 16)
	hdr[disklayout.BlockSize-1] = byte(crc >> 24)
	if err := dev.WriteBlock(sb.JournalStart+1, hdr); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRejectsOversizedTx(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	tx := &Tx{}
	for i := 0; i < j.Capacity()+10; i++ {
		tx.Add(sb.DataStart+uint32(i), fill(byte(i)))
	}
	err := j.Commit(tx)
	if err == nil {
		t.Fatal("oversized commit succeeded")
	}
}

func TestJournalFullAfterManyCommits(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	var err error
	for i := 0; i < 1000; i++ {
		tx := &Tx{}
		tx.Add(sb.DataStart+uint32(i%8), fill(byte(i)))
		if err = j.Commit(tx); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrJournalFull) {
		t.Fatalf("expected ErrJournalFull, got %v", err)
	}
	// Replay + new journal continues.
	if _, err := Replay(dev, sb); err != nil {
		t.Fatal(err)
	}
	j2 := mustNew(t, dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(0xEE))
	if err := j2.Commit(tx); err != nil {
		t.Fatalf("commit after replay: %v", err)
	}
}

// TestCheckpointedUnblocksFullJournal: the in-place analogue of the above —
// the same attached journal keeps committing after a checkpoint.
func TestCheckpointedUnblocksFullJournal(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	var err error
	for i := 0; i < 1000; i++ {
		tx := &Tx{}
		tx.Add(sb.DataStart+uint32(i%8), fill(byte(i)))
		if err = j.Commit(tx); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrJournalFull) {
		t.Fatalf("expected ErrJournalFull, got %v", err)
	}
	if err := j.Checkpointed(); err != nil {
		t.Fatal(err)
	}
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(0xEE))
	if err := j.Commit(tx); err != nil {
		t.Fatalf("commit after checkpoint: %v", err)
	}
}

func TestSpaceLeftShrinks(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	before := j.SpaceLeft()
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(1))
	tx.Add(sb.DataStart+1, fill(2))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	after := j.SpaceLeft()
	if after >= before {
		t.Errorf("SpaceLeft did not shrink: %d -> %d", before, after)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	dev, sb := setup(t)
	j := mustNew(t, dev, sb)
	if err := j.Commit(&Tx{}); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("empty commit produced a transaction")
	}
}

func TestReplayPropertyCommittedAlwaysApplied(t *testing.T) {
	// Property: for any sequence of committed transactions (with occasional
	// checkpoints) followed by a crash (device snapshot), replay reproduces
	// exactly the last committed value for every touched block.
	f := func(writes []uint8, ckptMask uint8) bool {
		if len(writes) == 0 {
			return true
		}
		if len(writes) > 12 {
			writes = writes[:12]
		}
		sb, _ := disklayout.Geometry(1024, 256, 64)
		dev := blockdev.NewMem(sb.NumBlocks)
		_ = dev.WriteBlock(0, disklayout.EncodeSuperblock(sb))
		jsb := make([]byte, disklayout.BlockSize)
		EncodeJSB(jsb, 1, 1)
		_ = dev.WriteBlock(sb.JournalStart, jsb)
		j, err := New(dev, sb)
		if err != nil {
			return false
		}
		want := map[uint32]byte{}
		for i, w := range writes {
			tgt := sb.DataStart + uint32(w%16)
			tx := &Tx{}
			tx.Add(tgt, fill(byte(i+1)))
			if err := j.Commit(tx); err != nil {
				return false
			}
			want[tgt] = byte(i + 1)
			if ckptMask&(1<<(i%8)) != 0 {
				// A checkpoint must write live targets home before advancing.
				for blk, v := range want {
					if j.Contains(blk) {
						if err := dev.WriteBlock(blk, fill(v)); err != nil {
							return false
						}
					}
				}
				if err := dev.Flush(); err != nil {
					return false
				}
				if err := j.Checkpointed(); err != nil {
					return false
				}
			}
		}
		crash := dev.Snapshot()
		if _, err := Replay(crash, sb); err != nil {
			return false
		}
		for tgt, v := range want {
			got, err := crash.ReadBlock(tgt)
			if err != nil || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
