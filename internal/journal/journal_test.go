package journal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

func setup(t *testing.T) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	sb, err := disklayout.Geometry(1024, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMem(sb.NumBlocks)
	if err := dev.WriteBlock(0, disklayout.EncodeSuperblock(sb)); err != nil {
		t.Fatal(err)
	}
	return dev, sb
}

func fill(b byte) []byte {
	blk := make([]byte, disklayout.BlockSize)
	for i := range blk {
		blk[i] = b
	}
	return blk
}

func TestCommitThenReplayAppliesHomeWrites(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	tx := &Tx{}
	t1, t2 := sb.DataStart, sb.DataStart+1
	tx.Add(t1, fill(0xA1))
	tx.Add(t2, fill(0xA2))
	if err := j.Commit(tx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Home locations untouched until replay (lazy write-back).
	got, _ := dev.ReadBlock(t1)
	if got[0] == 0xA1 {
		t.Fatal("commit eagerly wrote home location")
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Committed != 1 || st.Blocks != 2 || st.Uncommitted != 0 {
		t.Errorf("stats = %+v", st)
	}
	got, _ = dev.ReadBlock(t1)
	if !bytes.Equal(got, fill(0xA1)) {
		t.Error("replay did not write home block 1")
	}
	got, _ = dev.ReadBlock(t2)
	if !bytes.Equal(got, fill(0xA2)) {
		t.Error("replay did not write home block 2")
	}
}

func TestTxAddDeduplicatesTargets(t *testing.T) {
	tx := &Tx{}
	tx.Add(100, fill(1))
	tx.Add(101, fill(2))
	tx.Add(100, fill(3)) // replaces the first write
	if tx.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tx.Len())
	}
	if tx.Blocks[0][0] != 3 {
		t.Error("duplicate Add did not replace payload")
	}
}

func TestTxAddCopiesPayload(t *testing.T) {
	tx := &Tx{}
	buf := fill(7)
	tx.Add(100, buf)
	buf[0] = 99
	if tx.Blocks[0][0] != 7 {
		t.Error("Tx aliases the caller's buffer")
	}
}

func TestReplayEmptyJournal(t *testing.T) {
	dev, sb := setup(t)
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Committed != 0 || st.Uncommitted != 0 || st.Blocks != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplayIsIdempotent(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(0x42))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Snapshot the device right after commit: a crash here, replayed twice.
	crash := dev.Snapshot()
	if _, err := Replay(crash, sb); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(crash, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("second replay found %d transactions; reset failed", st.Committed)
	}
	got, _ := crash.ReadBlock(sb.DataStart)
	if !bytes.Equal(got, fill(0x42)) {
		t.Error("home write lost after double replay")
	}
}

func TestReplayIgnoresUncommittedTail(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	tx1 := &Tx{}
	tx1.Add(sb.DataStart, fill(1))
	if err := j.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	tx2 := &Tx{}
	tx2.Add(sb.DataStart+1, fill(2))
	if err := j.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	// Tear tx2's commit record: corrupt its commit block.
	// tx1 occupies [0,3), tx2 [3,6); commit of tx2 at +5.
	if err := dev.CorruptBlock(sb.JournalStart+5, 100, 0xFF); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 || st.Uncommitted != 1 {
		t.Errorf("stats = %+v, want 1 committed + 1 uncommitted", st)
	}
	got, _ := dev.ReadBlock(sb.DataStart)
	if got[0] != 1 {
		t.Error("committed tx1 not applied")
	}
	got, _ = dev.ReadBlock(sb.DataStart + 1)
	if got[0] == 2 {
		t.Error("torn tx2 was applied")
	}
}

func TestReplayStopsOnTornHeader(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(5))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := dev.CorruptBlock(sb.JournalStart, 8, 0x01); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("replayed %d transactions through a torn header", st.Committed)
	}
}

func TestReplayRejectsOutOfRangeTarget(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	tx := &Tx{}
	tx.Add(sb.NumBlocks-1, fill(1)) // legal
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Corrupting the target list breaks the header checksum, so replay treats
	// it as a torn header rather than writing out of range. To exercise the
	// out-of-range guard we must re-checksum — simulate a malicious journal by
	// rewriting a committed header with a bad target but a valid CRC.
	hdr, _ := dev.ReadBlock(sb.JournalStart)
	// Target list starts at offset 16.
	hdr[16] = 0xFF
	hdr[17] = 0xFF
	hdr[18] = 0xFF
	hdr[19] = 0xFF
	crc := disklayout.Checksum(hdr[:disklayout.BlockSize-4])
	hdr[disklayout.BlockSize-4] = byte(crc)
	hdr[disklayout.BlockSize-3] = byte(crc >> 8)
	hdr[disklayout.BlockSize-2] = byte(crc >> 16)
	hdr[disklayout.BlockSize-1] = byte(crc >> 24)
	if err := dev.WriteBlock(sb.JournalStart, hdr); err != nil {
		t.Fatal(err)
	}
	// The commit record CRC still matches the payload, so the tx looks
	// committed; the target bound check must reject it.
	if _, err := Replay(dev, sb); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("Replay = %v, want ErrCorrupt", err)
	}
}

func TestCommitRejectsOversizedTx(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	tx := &Tx{}
	for i := 0; i < j.Capacity()+10; i++ {
		tx.Add(sb.DataStart+uint32(i), fill(byte(i)))
	}
	err := j.Commit(tx)
	if err == nil {
		t.Fatal("oversized commit succeeded")
	}
}

func TestJournalFullAfterManyCommits(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	var err error
	for i := 0; i < 1000; i++ {
		tx := &Tx{}
		tx.Add(sb.DataStart+uint32(i%8), fill(byte(i)))
		if err = j.Commit(tx); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrJournalFull) {
		t.Fatalf("expected ErrJournalFull, got %v", err)
	}
	// Replay + new journal continues.
	if _, err := Replay(dev, sb); err != nil {
		t.Fatal(err)
	}
	j2 := New(dev, sb)
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(0xEE))
	if err := j2.Commit(tx); err != nil {
		t.Fatalf("commit after replay: %v", err)
	}
}

func TestSpaceLeftShrinks(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	before := j.SpaceLeft()
	tx := &Tx{}
	tx.Add(sb.DataStart, fill(1))
	tx.Add(sb.DataStart+1, fill(2))
	if err := j.Commit(tx); err != nil {
		t.Fatal(err)
	}
	after := j.SpaceLeft()
	if after >= before {
		t.Errorf("SpaceLeft did not shrink: %d -> %d", before, after)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	dev, sb := setup(t)
	j := New(dev, sb)
	if err := j.Commit(&Tx{}); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dev, sb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("empty commit produced a transaction")
	}
}

func TestReplayPropertyCommittedAlwaysApplied(t *testing.T) {
	// Property: for any sequence of committed transactions followed by a
	// crash (device snapshot), replay reproduces exactly the last committed
	// value for every touched block.
	f := func(writes []uint8) bool {
		if len(writes) == 0 {
			return true
		}
		if len(writes) > 12 {
			writes = writes[:12]
		}
		sb, _ := disklayout.Geometry(1024, 256, 64)
		dev := blockdev.NewMem(sb.NumBlocks)
		_ = dev.WriteBlock(0, disklayout.EncodeSuperblock(sb))
		j := New(dev, sb)
		want := map[uint32]byte{}
		for i, w := range writes {
			tgt := sb.DataStart + uint32(w%16)
			tx := &Tx{}
			tx.Add(tgt, fill(byte(i+1)))
			if err := j.Commit(tx); err != nil {
				return false
			}
			want[tgt] = byte(i + 1)
		}
		crash := dev.Snapshot()
		if _, err := Replay(crash, sb); err != nil {
			return false
		}
		for tgt, v := range want {
			got, err := crash.ReadBlock(tgt)
			if err != nil || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
