package difftest

import (
	"errors"
	"testing"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// hostileFS is a minimal fsapi.FS whose behavior is scripted per test: it can
// panic on chosen calls or fabricate malformed directory trees. It stands in
// for an implementation the torture campaign has driven into a corrupt state.
type hostileFS struct {
	panicOn string                             // method name to panic in ("" = never)
	readdir func(path string) []fsapi.DirEntry // nil = empty dirs
}

var hostileDirMode = disklayout.MkMode(disklayout.TypeDir, 0o755)

func (h *hostileFS) maybePanic(m string) {
	if h.panicOn == m {
		panic("hostileFS: scripted panic in " + m)
	}
}

func (h *hostileFS) Mkdir(path string, perm uint16) error { h.maybePanic("Mkdir"); return nil }
func (h *hostileFS) Rmdir(path string) error              { h.maybePanic("Rmdir"); return nil }
func (h *hostileFS) Create(path string, perm uint16) (fsapi.FD, error) {
	h.maybePanic("Create")
	return 1, nil
}
func (h *hostileFS) Open(path string) (fsapi.FD, error) { h.maybePanic("Open"); return 1, nil }
func (h *hostileFS) Close(fd fsapi.FD) error            { h.maybePanic("Close"); return nil }
func (h *hostileFS) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	h.maybePanic("WriteAt")
	return len(data), nil
}
func (h *hostileFS) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	h.maybePanic("ReadAt")
	return nil, nil
}
func (h *hostileFS) Truncate(path string, size int64) error { h.maybePanic("Truncate"); return nil }
func (h *hostileFS) Unlink(path string) error               { h.maybePanic("Unlink"); return nil }
func (h *hostileFS) Rename(old, new string) error           { h.maybePanic("Rename"); return nil }
func (h *hostileFS) Link(old, new string) error             { h.maybePanic("Link"); return nil }
func (h *hostileFS) Symlink(target, path string) error      { h.maybePanic("Symlink"); return nil }
func (h *hostileFS) Readlink(path string) (string, error) {
	h.maybePanic("Readlink")
	return "", nil
}
func (h *hostileFS) Stat(path string) (fsapi.Stat, error) {
	h.maybePanic("Stat")
	return fsapi.Stat{Mode: hostileDirMode, Nlink: 2, Ino: 1}, nil
}
func (h *hostileFS) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	h.maybePanic("Fstat")
	return fsapi.Stat{Mode: hostileDirMode, Nlink: 2, Ino: 1}, nil
}
func (h *hostileFS) SetPerm(path string, perm uint16) error { h.maybePanic("SetPerm"); return nil }
func (h *hostileFS) Fsync(fd fsapi.FD) error                { h.maybePanic("Fsync"); return nil }
func (h *hostileFS) Sync() error                            { h.maybePanic("Sync"); return nil }
func (h *hostileFS) Readdir(path string) ([]fsapi.DirEntry, error) {
	h.maybePanic("Readdir")
	if h.readdir == nil {
		return nil, nil
	}
	return h.readdir(path), nil
}

func TestRunTraceRejectsMalformedTrace(t *testing.T) {
	fs := &hostileFS{}
	// Nil op.
	_, err := RunTrace(fs, []*oplog.Op{nil})
	if !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("nil op: got %v, want ErrMalformedTrace", err)
	}
	// Out-of-range kind.
	_, err = RunTrace(fs, []*oplog.Op{{Kind: oplog.Kind(200)}})
	if !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("bad kind: got %v, want ErrMalformedTrace", err)
	}
	// VerifyEquivalence shares the validation.
	_, err = VerifyEquivalence(fs, fs, []*oplog.Op{nil})
	if !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("VerifyEquivalence nil op: got %v, want ErrMalformedTrace", err)
	}
}

func TestRunTraceContainsImplementationPanic(t *testing.T) {
	fs := &hostileFS{panicOn: "Mkdir"}
	trace := []*oplog.Op{{Kind: oplog.KMkdir, Path: "/d", Perm: 0o755}}
	_, err := RunTrace(fs, trace)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Stage != "apply" || pe.Op == nil {
		t.Fatalf("panic error missing context: %+v", pe)
	}
}

func TestVerifyEquivalenceContainsOraclePanic(t *testing.T) {
	impl := &hostileFS{}
	oracle := &hostileFS{panicOn: "Mkdir"}
	trace := []*oplog.Op{{Kind: oplog.KMkdir, Path: "/d", Perm: 0o755}}
	_, err := VerifyEquivalence(impl, oracle, trace)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Stage != "oracle" {
		t.Fatalf("stage = %q, want oracle", pe.Stage)
	}
}

func TestDumpStateContainsWalkPanic(t *testing.T) {
	fs := &hostileFS{panicOn: "Readdir"}
	_, err := DumpState(fs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Stage != "walk" || pe.Path != "/" {
		t.Fatalf("panic error missing walk context: %+v", pe)
	}
}

func TestDumpStateBoundsDirectoryCycle(t *testing.T) {
	// Every directory claims one child "loop", so the tree is an infinite
	// chain /loop/loop/... — the depth budget must cut it off.
	fs := &hostileFS{
		readdir: func(path string) []fsapi.DirEntry {
			return []fsapi.DirEntry{{Name: "loop", Ino: 1, Type: 2}}
		},
	}
	_, err := DumpState(fs)
	if !errors.Is(err, ErrWalkLimit) {
		t.Fatalf("got %v, want ErrWalkLimit", err)
	}
}

func TestDumpStateRejectsUnwalkableDirentNames(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b"} {
		fs := &hostileFS{
			readdir: func(path string) []fsapi.DirEntry {
				if path != "/" {
					return nil
				}
				return []fsapi.DirEntry{{Name: bad, Ino: 2, Type: 2}}
			},
		}
		_, err := DumpState(fs)
		if !errors.Is(err, ErrWalkLimit) {
			t.Fatalf("name %q: got %v, want ErrWalkLimit", bad, err)
		}
	}
}

func TestRunTraceStillReportsOrdinaryErrors(t *testing.T) {
	// A plain errno from the implementation is an outcome, not a checker
	// error: the trace must complete and report the discrepancy.
	fs := &hostileFS{}
	oracleOp := &oplog.Op{Kind: oplog.KMkdir, Path: "/d", Perm: 0o755, Errno: fserr.Errno(fserr.ErrExist)}
	disc, err := RunTrace(fs, []*oplog.Op{oracleOp})
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	if len(disc) != 1 || disc[0].Field != "errno" {
		t.Fatalf("discrepancies = %v, want one errno mismatch", disc)
	}
}
