package difftest

import (
	"fmt"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/mkfs"
	"repro/internal/workload"
)

// TestTwinLayoutDifferential is the extent migration's correctness oracle:
// two identically-formatted images, one mounted on the legacy bmap layout
// and one on extents, replay the same recorded op stream. Every per-op
// outcome, the final state dump, and the post-unmount fsck report must be
// identical — the layout may only change where the bytes live, never what
// the filesystem says or stores.
func TestTwinLayoutDifferential(t *testing.T) {
	profiles := []workload.Profile{workload.DataHeavy, workload.Soup}
	for _, profile := range profiles {
		for _, seed := range []int64{3, 17} {
			t.Run(fmt.Sprintf("%s/seed%d", profile, seed), func(t *testing.T) {
				devs := map[string]*blockdev.Mem{}
				dumps := map[string]map[string]Entry{}
				reports := map[string]*fsck.Report{}
				var sb *disklayout.Superblock
				for _, layout := range []string{"bmap", "extent"} {
					dev := blockdev.NewMem(4096)
					var err error
					sb, err = mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
					if err != nil {
						t.Fatal(err)
					}
					devs[layout] = dev
				}
				trace := workload.Generate(workload.Config{
					Profile: profile, Seed: seed, NumOps: 800, Superblock: sb, SyncEvery: 100,
				})
				for _, layout := range []string{"bmap", "extent"} {
					fs, err := basefs.Mount(devs[layout], basefs.Options{LegacyLayout: layout == "bmap"})
					if err != nil {
						t.Fatal(err)
					}
					// Outcome parity: each op must return exactly what the
					// recorded oracle (the specification model) returned.
					discs, err := RunTrace(fs, trace)
					if err != nil {
						t.Fatalf("%s: %v", layout, err)
					}
					for _, d := range discs {
						t.Errorf("%s outcome: %s", layout, d)
					}
					dump, err := DumpState(fs)
					if err != nil {
						t.Fatalf("%s dump: %v", layout, err)
					}
					dumps[layout] = dump
					if err := fs.Unmount(); err != nil {
						t.Fatalf("%s unmount: %v", layout, err)
					}
					reports[layout] = fsck.Check(devs[layout])
				}
				for _, d := range CompareStates(dumps["extent"], dumps["bmap"]) {
					t.Errorf("state dump: %s", d)
				}
				for layout, rep := range reports {
					if !rep.Clean() {
						for _, p := range rep.Problems {
							t.Errorf("%s fsck: %s", layout, p)
						}
					}
				}
				// The reports are identical when both problem lists render the
				// same (clean runs: both empty).
				a, b := fmt.Sprint(reports["bmap"].Problems), fmt.Sprint(reports["extent"].Problems)
				if a != b {
					t.Errorf("fsck reports diverge:\n bmap: %s\n extent: %s", a, b)
				}
			})
		}
	}
}
