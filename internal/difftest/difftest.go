// Package difftest implements the differential testing campaign of the
// paper's §4.3: executing the same operation sequences against multiple
// filesystem implementations and reporting discrepancies.
//
// "The testing phase uses the base as a reference filesystem to test the
// shadow by running a large volume of workloads and monitoring for
// discrepancies. Disagreements between the base and shadow indicate bugs in
// the base or missing conditions in the shadow." Here the executable
// specification model joins as a third voice, so a disagreement also says
// which side is wrong.
//
// Two comparison layers:
//
//   - Outcome comparison: each operation's errno, returned descriptor,
//     returned inode number, and byte count must match the oracle trace.
//   - State comparison: after the sequence, a canonical walk of the whole
//     tree through the public API (paths, types, permissions, nlink, sizes,
//     content hashes, symlink targets, listing order) must match.
package difftest

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/oplog"
)

// Sentinel errors for the library-consumer contract: RunTrace, DumpState, and
// VerifyEquivalence never panic and never loop forever, whatever the
// implementation under test does. A torture campaign feeding thousands of
// generated cases through these functions must be able to record "this case
// poisoned the checker" as a typed finding and keep going.
var (
	// ErrMalformedTrace reports a trace the checker refuses to run: nil ops,
	// or op kinds outside the recordable set.
	ErrMalformedTrace = errors.New("difftest: malformed trace")
	// ErrWalkLimit reports a state walk that exceeded its depth or entry
	// budget — the signature of a directory cycle or a self-growing tree in a
	// corrupt implementation.
	ErrWalkLimit = errors.New("difftest: state walk exceeded limits")
)

// Walk budgets. A legitimate image stays far inside both; only a malformed
// tree (cycles, fabricated dirents) can reach them.
const (
	walkMaxDepth   = 256
	walkMaxEntries = 1 << 20
)

// PanicError is the typed wrapper for a panic recovered from the
// implementation under test (or the oracle) while the checker was driving it.
type PanicError struct {
	// Stage says what the checker was doing: "apply", "oracle", or "walk".
	Stage string
	// Op is the operation in flight for apply/oracle panics, nil for walks.
	Op *oplog.Op
	// Path is the walk position for walk panics.
	Path string
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string {
	switch {
	case e.Op != nil:
		return fmt.Sprintf("difftest: panic during %s of %s: %v", e.Stage, e.Op, e.Value)
	case e.Path != "":
		return fmt.Sprintf("difftest: panic during %s at %s: %v", e.Stage, e.Path, e.Value)
	}
	return fmt.Sprintf("difftest: panic during %s: %v", e.Stage, e.Value)
}

// validateTrace rejects traces the executor cannot safely run.
func validateTrace(trace []*oplog.Op) error {
	for i, o := range trace {
		if o == nil {
			return fmt.Errorf("%w: nil op at index %d", ErrMalformedTrace, i)
		}
		if o.Kind < oplog.KMkdir || o.Kind > oplog.KReadProbe {
			return fmt.Errorf("%w: op %d has unknown kind %d", ErrMalformedTrace, i, int(o.Kind))
		}
	}
	return nil
}

// safeApply runs oplog.Apply with panic containment. The returned error is
// non-nil only for a contained panic: ordinary operation errors are part of
// the recorded outcome, not checker failures.
func safeApply(stage string, fs fsapi.FS, op *oplog.Op) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Stage: stage, Op: op, Value: p}
		}
	}()
	_ = oplog.Apply(fs, op)
	return nil
}

// Discrepancy is one observed disagreement between an implementation and
// the oracle.
type Discrepancy struct {
	// Op is the operation (with the oracle outcome) where behavior diverged;
	// nil for state-level discrepancies found after the run.
	Op *oplog.Op
	// Field names what differed ("errno", "fd", "ino", "n", or a state path).
	Field string
	// Got and Want describe the divergence.
	Got, Want string
}

// String formats the discrepancy for reports.
func (d Discrepancy) String() string {
	if d.Op != nil {
		return fmt.Sprintf("%s: %s = %s, oracle says %s", d.Op, d.Field, d.Got, d.Want)
	}
	return fmt.Sprintf("state %s: got %s, want %s", d.Field, d.Got, d.Want)
}

// RunTrace applies an oracle trace to fs and returns every outcome
// discrepancy. The trace is not mutated. A malformed trace or a panic inside
// the implementation under test returns a typed error (ErrMalformedTrace or
// *PanicError) along with the discrepancies found up to that point; RunTrace
// itself never panics.
func RunTrace(fs fsapi.FS, trace []*oplog.Op) ([]Discrepancy, error) {
	if err := validateTrace(trace); err != nil {
		return nil, err
	}
	var out []Discrepancy
	for _, oracle := range trace {
		op := oracle.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		if err := safeApply("apply", fs, op); err != nil {
			return out, err
		}
		out = append(out, CompareOutcome(op, oracle)...)
	}
	return out, nil
}

// CompareOutcome checks one executed op against its oracle record.
func CompareOutcome(got, oracle *oplog.Op) []Discrepancy {
	var out []Discrepancy
	if got.Errno != oracle.Errno {
		out = append(out, Discrepancy{Op: oracle, Field: "errno",
			Got: fmt.Sprint(got.Errno), Want: fmt.Sprint(oracle.Errno)})
	}
	// Return values are only meaningful on success.
	if oracle.Errno != 0 {
		return out
	}
	switch oracle.Kind {
	case oplog.KCreate, oplog.KOpen:
		if got.RetFD != oracle.RetFD {
			out = append(out, Discrepancy{Op: oracle, Field: "fd",
				Got: fmt.Sprint(got.RetFD), Want: fmt.Sprint(oracle.RetFD)})
		}
		if got.RetIno != oracle.RetIno {
			out = append(out, Discrepancy{Op: oracle, Field: "ino",
				Got: fmt.Sprint(got.RetIno), Want: fmt.Sprint(oracle.RetIno)})
		}
	case oplog.KMkdir, oplog.KStatProbe:
		if got.RetIno != oracle.RetIno {
			out = append(out, Discrepancy{Op: oracle, Field: "ino",
				Got: fmt.Sprint(got.RetIno), Want: fmt.Sprint(oracle.RetIno)})
		}
	case oplog.KWrite, oplog.KReadProbe:
		if got.RetN != oracle.RetN {
			out = append(out, Discrepancy{Op: oracle, Field: "n",
				Got: fmt.Sprint(got.RetN), Want: fmt.Sprint(oracle.RetN)})
		}
	}
	return out
}

// Entry is the canonical description of one name in a state dump.
type Entry struct {
	Path    string
	Type    uint16
	Perm    uint16
	Nlink   uint16
	Ino     uint32
	Size    int64
	Mtime   uint64
	Ctime   uint64
	Hash    uint32 // CRC32C of file contents
	Target  string // symlink target
	Listing string // for dirs: child names in listing order
}

// DumpState walks the filesystem through its public API and returns the
// canonical state map keyed by path. Content of every regular file is read
// and hashed.
//
// The walk is defensive: panics inside the implementation surface as a typed
// *PanicError, and depth/entry budgets (plus dirent-name validation) bound
// the walk on malformed trees — a directory cycle returns ErrWalkLimit
// instead of recursing forever.
func DumpState(fs fsapi.FS) (out map[string]Entry, err error) {
	var walkPath string
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, &PanicError{Stage: "walk", Path: walkPath, Value: p}
		}
	}()
	out = make(map[string]Entry)
	var walk func(path string, depth int) error
	walk = func(path string, depth int) error {
		walkPath = path
		if depth > walkMaxDepth {
			return fmt.Errorf("%w: depth %d at %s (directory cycle?)", ErrWalkLimit, depth, path)
		}
		if len(out) >= walkMaxEntries {
			return fmt.Errorf("%w: more than %d entries", ErrWalkLimit, walkMaxEntries)
		}
		st, err := fs.Stat(path)
		if err != nil {
			return fmt.Errorf("difftest: stat %s: %w", path, err)
		}
		e := Entry{
			Path:  path,
			Type:  disklayout.ModeType(st.Mode),
			Perm:  disklayout.ModePerm(st.Mode),
			Nlink: st.Nlink,
			Ino:   st.Ino,
			Size:  st.Size,
			Mtime: st.Mtime,
			Ctime: st.Ctime,
		}
		switch e.Type {
		case disklayout.TypeDir:
			ents, err := fs.Readdir(path)
			if err != nil {
				return fmt.Errorf("difftest: readdir %s: %w", path, err)
			}
			names := make([]string, len(ents))
			for i, de := range ents {
				names[i] = de.Name
			}
			e.Listing = fmt.Sprint(names)
			out[path] = e
			for _, de := range ents {
				if de.Name == "" || de.Name == "." || de.Name == ".." || strings.ContainsRune(de.Name, '/') {
					return fmt.Errorf("%w: dir %s lists unwalkable name %q", ErrWalkLimit, path, de.Name)
				}
				child := path + "/" + de.Name
				if path == "/" {
					child = "/" + de.Name
				}
				if err := walk(child, depth+1); err != nil {
					return err
				}
			}
			return nil
		case disklayout.TypeFile:
			fd, err := fs.Open(path)
			if err != nil {
				return fmt.Errorf("difftest: open %s: %w", path, err)
			}
			var content []byte
			for off := int64(0); off < st.Size; off += 1 << 16 {
				chunk, err := fs.ReadAt(fd, off, 1<<16)
				if err != nil {
					_ = fs.Close(fd)
					return fmt.Errorf("difftest: read %s: %w", path, err)
				}
				content = append(content, chunk...)
			}
			_ = fs.Close(fd)
			e.Hash = disklayout.Checksum(content)
			out[path] = e
			return nil
		case disklayout.TypeSym:
			target, err := fs.Readlink(path)
			if err != nil {
				return fmt.Errorf("difftest: readlink %s: %w", path, err)
			}
			e.Target = target
			out[path] = e
			return nil
		}
		out[path] = e
		return nil
	}
	if err := walk("/", 0); err != nil {
		return nil, err
	}
	return out, nil
}

// CompareStates diffs two canonical dumps, returning a discrepancy per
// differing path or field.
func CompareStates(got, want map[string]Entry) []Discrepancy {
	var out []Discrepancy
	var paths []string
	seen := map[string]bool{}
	for p := range want {
		paths = append(paths, p)
		seen[p] = true
	}
	for p := range got {
		if !seen[p] {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		g, gok := got[p]
		w, wok := want[p]
		switch {
		case !gok:
			out = append(out, Discrepancy{Field: p, Got: "<missing>", Want: describe(w)})
		case !wok:
			out = append(out, Discrepancy{Field: p, Got: describe(g), Want: "<missing>"})
		case g != w:
			out = append(out, Discrepancy{Field: p, Got: describe(g), Want: describe(w)})
		}
	}
	return out
}

func describe(e Entry) string {
	return fmt.Sprintf("type=%d perm=%o nlink=%d ino=%d size=%d mtime=%d ctime=%d hash=%x target=%q listing=%s",
		e.Type, e.Perm, e.Nlink, e.Ino, e.Size, e.Mtime, e.Ctime, e.Hash, e.Target, e.Listing)
}

// VerifyEquivalence runs a trace on fs and then compares both per-op
// outcomes and final state against an oracle filesystem given the same
// trace. It is the complete §4.3 check for one workload. Like RunTrace and
// DumpState it never panics: malformed traces and contained panics (in
// either implementation) come back as typed errors with the discrepancies
// gathered so far.
func VerifyEquivalence(fs, oracleFS fsapi.FS, trace []*oplog.Op) ([]Discrepancy, error) {
	if err := validateTrace(trace); err != nil {
		return nil, err
	}
	// Run the oracle first to (re)fill outcomes.
	oracleTrace := make([]*oplog.Op, len(trace))
	for i, o := range trace {
		op := o.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		if err := safeApply("oracle", oracleFS, op); err != nil {
			return nil, err
		}
		oracleTrace[i] = op
	}
	disc, err := RunTrace(fs, oracleTrace)
	if err != nil {
		return disc, err
	}
	gotState, err := DumpState(fs)
	if err != nil {
		return disc, err
	}
	wantState, err := DumpState(oracleFS)
	if err != nil {
		return disc, err
	}
	disc = append(disc, CompareStates(gotState, wantState)...)
	return disc, nil
}
