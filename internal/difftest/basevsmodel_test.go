package difftest

import (
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// newPair builds a base filesystem and a model with identical geometry.
func newPair(t *testing.T, blocks uint32) (*basefs.FS, *model.Model, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(blocks)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Kill)
	return fs, model.New(sb), sb
}

// TestBaseMatchesModelAcrossWorkloads is the §4.3 differential campaign in
// miniature: for every profile and several seeds, the base filesystem's
// per-operation outcomes and final state must equal the executable
// specification's.
func TestBaseMatchesModelAcrossWorkloads(t *testing.T) {
	for _, profile := range workload.Profiles() {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(profile.String()+"-"+string(rune('0'+seed)), func(t *testing.T) {
				fs, m, sb := newPair(t, 16384)
				trace := workload.Generate(workload.Config{
					Profile:    profile,
					Seed:       seed,
					NumOps:     800,
					Superblock: sb,
				})
				disc, err := VerifyEquivalence(fs, m, trace)
				if err != nil {
					t.Fatalf("equivalence run failed: %v", err)
				}
				for i, d := range disc {
					if i >= 10 {
						t.Errorf("... and %d more", len(disc)-10)
						break
					}
					t.Errorf("discrepancy: %s", d)
				}
			})
		}
	}
}

// TestBaseMatchesModelUnderENOSPC uses a tiny image so both implementations
// exhaust space; the failure point and post-failure state must agree.
func TestBaseMatchesModelUnderENOSPC(t *testing.T) {
	fs, m, sb := newPair(t, 400)
	trace := workload.Generate(workload.Config{
		Profile:    workload.DataHeavy,
		Seed:       99,
		NumOps:     600,
		Superblock: sb,
	})
	disc, err := VerifyEquivalence(fs, m, trace)
	if err != nil {
		t.Fatalf("equivalence run failed: %v", err)
	}
	for i, d := range disc {
		if i >= 10 {
			break
		}
		t.Errorf("discrepancy: %s", d)
	}
}

// TestBaseMatchesModelAfterRemount checks that durability does not change
// logical state: run half a trace, sync, remount the base, run the rest.
func TestBaseMatchesModelAfterRemount(t *testing.T) {
	dev := blockdev.NewMem(16384)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := model.New(sb)
	trace := workload.Generate(workload.Config{
		Profile:    workload.Soup,
		Seed:       7,
		NumOps:     400,
		Superblock: sb,
	})
	// A remount closes all descriptors; to keep the model in lockstep we
	// split at a point where the generator happens to hold no open fds, or
	// force closure on both sides identically. Simpler: close all open fds
	// via trace inspection before the split.
	half := len(trace) / 2
	open := map[int]bool{}
	for _, o := range trace[:half] {
		switch o.Kind {
		case oplog.KCreate, oplog.KOpen:
			if o.Errno == 0 {
				open[int(o.RetFD)] = true
			}
		case oplog.KClose:
			if o.Errno == 0 {
				delete(open, int(o.FD))
			}
		}
	}
	run := func(ops []*oplog.Op) {
		for _, oracle := range ops {
			op := oracle.Clone()
			op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
			_ = oplog.Apply(m, op)
			got := op.Clone()
			got.Errno, got.RetFD, got.RetIno, got.RetN = 0, 0, 0, 0
			_ = oplog.Apply(fs, got)
			for _, d := range CompareOutcome(got, op) {
				t.Fatalf("discrepancy: %s", d)
			}
		}
	}
	run(trace[:half])
	for fd := range open {
		_ = fs.Close(fsapi.FD(fd))
		_ = m.Close(fsapi.FD(fd))
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs, err = basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	run(trace[half:])
	gotState, err := DumpState(fs)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range CompareStates(gotState, wantState) {
		if i >= 10 {
			break
		}
		t.Errorf("state discrepancy: %s", d)
	}
}
