package difftest

import (
	"fmt"
	"testing"

	"repro/internal/disklayout"
	"repro/internal/oplog"
)

// TestBigDirectoryParity pushes one directory past its direct blocks (768
// entries at 64 per block over 12 direct pointers) so insertion walks into
// the indirect range, then removes every other entry and refills, checking
// the base against the model throughout (slot-reuse order, sizes, ENOSPC
// accounting with indirect overhead).
func TestBigDirectoryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("big-directory walk is slow")
	}
	fs, m, _ := newPair(t, 16384)
	const entries = disklayout.DirentsPerBlock*disklayout.NumDirect + 70 // spills into indirect
	run := func(op *oplog.Op) {
		t.Helper()
		oracle := op.Clone()
		_ = oplog.Apply(m, oracle)
		got := op.Clone()
		_ = oplog.Apply(fs, got)
		for _, d := range CompareOutcome(got, oracle) {
			t.Fatalf("discrepancy: %s", d)
		}
	}
	run(&oplog.Op{Kind: oplog.KMkdir, Path: "/big", Perm: 0o755})
	for i := 0; i < entries; i++ {
		run(&oplog.Op{Kind: oplog.KCreate, Path: fmt.Sprintf("/big/e%05d", i), Perm: 0o644})
		run(&oplog.Op{Kind: oplog.KClose, FD: 0})
	}
	// The directory now spans 13+ blocks; sizes must agree.
	run(&oplog.Op{Kind: oplog.KStatProbe, Path: "/big"})
	st, err := fs.Stat("/big")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size < (disklayout.NumDirect+1)*disklayout.BlockSize {
		t.Fatalf("directory did not spill into indirect range: size %d", st.Size)
	}
	// Punch holes in the slot array and refill: first-free-slot reuse must
	// match exactly (listing order is compared in the final state dump).
	for i := 0; i < entries; i += 2 {
		run(&oplog.Op{Kind: oplog.KUnlink, Path: fmt.Sprintf("/big/e%05d", i)})
	}
	for i := 0; i < 200; i++ {
		run(&oplog.Op{Kind: oplog.KCreate, Path: fmt.Sprintf("/big/n%04d", i), Perm: 0o644})
		run(&oplog.Op{Kind: oplog.KClose, FD: 0})
	}
	gotState, err := DumpState(fs)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range CompareStates(gotState, wantState) {
		if i >= 5 {
			break
		}
		t.Errorf("state: %s", d)
	}
}
