// Package fsapi defines the filesystem API shared by the base filesystem,
// the shadow filesystem, and the executable specification model.
//
// The paper requires the shadow to adhere to "the same API ... as the base
// filesystem it enhances" (§Abstract) and requires that, for a given
// operation sequence, "the output at the API level ... must be equivalent
// between the base and the shadow" (§3.3). Centralizing the interface, the
// path normalizer, and the stat/dirent types here is what makes equivalence
// well-defined and mechanically checkable by the differential tester.
//
// API semantics (identical across all three implementations):
//
//   - Paths are absolute, '/'-separated. "." components are skipped and ".."
//     is resolved lexically (no symlink following during lookup; opening a
//     symlink returns ErrInvalid — symlinks are created and read with
//     Symlink/Readlink only).
//   - Create is exclusive: it fails with ErrExist if the name exists.
//   - File descriptors are allocated lowest-free-first (POSIX), and inode
//     numbers lowest-free-first, so independent implementations given the
//     same operation sequence produce identical application-visible numbers.
//   - Reads of holes return zeros; reads do not update atime (noatime).
//   - Timestamps come from a deterministic logical clock that ticks once per
//     state-changing operation.
package fsapi

import (
	"strings"

	"repro/internal/fserr"
)

// FD is an application-visible file descriptor number.
type FD int

// Stat describes an inode as returned by Stat and Fstat.
type Stat struct {
	Ino   uint32
	Mode  uint16 // type and permission bits; see disklayout.MkMode
	Nlink uint16
	Size  int64
	Mtime uint64
	Ctime uint64
}

// DirEntry is one name in a directory listing.
type DirEntry struct {
	Name string
	Ino  uint32
	Type uint16 // disklayout.TypeFile, TypeDir, or TypeSym
}

// FS is the filesystem operation set shared by base, shadow, and model.
//
// The RAE supervisor records in the operation log every state-changing call
// (Mkdir, Rmdir, Create, Truncate, Unlink, Rename, Link, Symlink, SetPerm,
// WriteAt) plus the descriptor-lifecycle and durability calls the shadow
// needs to reconstruct the fd table and the stable point (Open, Close,
// Fsync, Sync) — see oplog.Kind.Mutating. The read-only calls — ReadAt,
// Stat, Fstat, Readdir, Readlink — are never recorded: reads don't widen the
// gap between the applications' view and the on-disk state (noatime), so
// replay doesn't need them.
type FS interface {
	// Mkdir creates a directory. The parent must exist.
	Mkdir(path string, perm uint16) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Create exclusively creates a regular file and opens it.
	Create(path string, perm uint16) (FD, error)
	// Open opens an existing regular file.
	Open(path string) (FD, error)
	// Close releases a file descriptor.
	Close(fd FD) error
	// ReadAt reads up to n bytes at off. Short reads happen only at EOF.
	ReadAt(fd FD, off int64, n int) ([]byte, error)
	// WriteAt writes data at off, extending the file as needed.
	WriteAt(fd FD, off int64, data []byte) (int, error)
	// Truncate sets a regular file's size, zero-filling on extension.
	Truncate(path string, size int64) error
	// Unlink removes a file or symlink name (never a directory).
	Unlink(path string) error
	// Rename atomically moves oldPath to newPath, replacing a compatible
	// existing target (file over file, empty dir over dir).
	Rename(oldPath, newPath string) error
	// Link creates a hard link to a regular file.
	Link(oldPath, newPath string) error
	// Symlink creates a symbolic link holding target.
	Symlink(target, linkPath string) error
	// Readlink returns a symlink's target.
	Readlink(path string) (string, error)
	// Stat describes the inode at path.
	Stat(path string) (Stat, error)
	// Fstat describes the open file's inode.
	Fstat(fd FD) (Stat, error)
	// Readdir lists a directory in on-disk entry order.
	Readdir(path string) ([]DirEntry, error)
	// SetPerm replaces an inode's permission bits.
	SetPerm(path string, perm uint16) error
	// Fsync persists an open file's data and metadata.
	Fsync(fd FD) error
	// Sync persists everything.
	Sync() error
}

// SplitPath normalizes an absolute path into its components, resolving "."
// and ".." lexically. It rejects relative paths and empty components other
// than those produced by duplicate slashes. The root is the empty slice.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fserr.ErrInvalid
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
			// skip
		case "..":
			if len(comps) == 0 {
				// ".." at the root stays at the root, as in POSIX.
				continue
			}
			comps = comps[:len(comps)-1]
		default:
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// SplitDirBase normalizes path and separates it into parent components and a
// final name. Operations that create or remove names use this; targeting the
// root (no final name) yields ErrInvalid.
func SplitDirBase(path string) (dir []string, base string, err error) {
	comps, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", fserr.ErrInvalid
	}
	return comps[:len(comps)-1], comps[len(comps)-1], nil
}

// Clock is the deterministic logical clock every implementation shares: one
// tick per state-changing operation, so timestamps agree across independent
// executions of the same sequence.
type Clock struct{ now uint64 }

// Tick advances the clock and returns the new time.
func (c *Clock) Tick() uint64 { c.now++; return c.now }

// Now returns the current time without advancing.
func (c *Clock) Now() uint64 { return c.now }

// Set forces the clock, used when reconstructing state at a recorded time.
func (c *Clock) Set(v uint64) { c.now = v }
