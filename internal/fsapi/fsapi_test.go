package fsapi

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fserr"
)

func TestSplitPathBasics(t *testing.T) {
	cases := map[string][]string{
		"/":            {},
		"/a":           {"a"},
		"/a/b/c":       {"a", "b", "c"},
		"//a///b":      {"a", "b"},
		"/a/./b":       {"a", "b"},
		"/a/b/..":      {"a"},
		"/a/../b":      {"b"},
		"/..":          {},
		"/../..":       {},
		"/../a":        {"a"},
		"/a/b/../../c": {"c"},
		"/a/":          {"a"},
	}
	for path, want := range cases {
		got, err := SplitPath(path)
		if err != nil {
			t.Errorf("SplitPath(%q): %v", path, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("SplitPath(%q) = %v, want %v", path, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", path, got, want)
				break
			}
		}
	}
}

func TestSplitPathRejectsRelative(t *testing.T) {
	for _, path := range []string{"", "a", "a/b", "./a", "../a"} {
		if _, err := SplitPath(path); !errors.Is(err, fserr.ErrInvalid) {
			t.Errorf("SplitPath(%q) = %v, want ErrInvalid", path, err)
		}
	}
}

func TestSplitDirBase(t *testing.T) {
	dir, base, err := SplitDirBase("/a/b/c")
	if err != nil || base != "c" || len(dir) != 2 || dir[0] != "a" || dir[1] != "b" {
		t.Errorf("SplitDirBase(/a/b/c) = (%v, %q, %v)", dir, base, err)
	}
	dir, base, err = SplitDirBase("/top")
	if err != nil || base != "top" || len(dir) != 0 {
		t.Errorf("SplitDirBase(/top) = (%v, %q, %v)", dir, base, err)
	}
	if _, _, err := SplitDirBase("/"); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("SplitDirBase(/) = %v, want ErrInvalid", err)
	}
	if _, _, err := SplitDirBase("/a/.."); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("SplitDirBase(/a/..) = %v, want ErrInvalid (resolves to root)", err)
	}
}

// TestSplitPathIdempotentProperty: re-joining and re-splitting a normalized
// path is a fixed point.
func TestSplitPathIdempotentProperty(t *testing.T) {
	f := func(raw []string) bool {
		path := "/"
		for _, c := range raw {
			c = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 {
					return 'x'
				}
				return r
			}, c)
			path += c + "/"
		}
		comps, err := SplitPath(path)
		if err != nil {
			return false
		}
		rejoined := "/" + strings.Join(comps, "/")
		comps2, err := SplitPath(rejoined)
		if err != nil {
			return false
		}
		if len(comps) != len(comps2) {
			return false
		}
		for i := range comps {
			if comps[i] != comps2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitPathNeverEmitsDotComponents(t *testing.T) {
	f := func(segments []uint8) bool {
		path := "/"
		opts := []string{"a", ".", "..", "bb", "", "c.d"}
		for _, s := range segments {
			path += opts[int(s)%len(opts)] + "/"
		}
		comps, err := SplitPath(path)
		if err != nil {
			return false
		}
		for _, c := range comps {
			if c == "" || c == "." || c == ".." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Error("fresh clock not at zero")
	}
	if c.Tick() != 1 || c.Tick() != 2 || c.Now() != 2 {
		t.Error("tick sequence wrong")
	}
	c.Set(100)
	if c.Now() != 100 || c.Tick() != 101 {
		t.Error("Set/Tick interaction wrong")
	}
}
