package fsck

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// requireSameReport pins the parity-by-construction property: the parallel
// front end must change nothing the rule engine reports.
func requireSameReport(t *testing.T, want, got *Report, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Problems, got.Problems) {
		t.Errorf("%s: problem lists diverge\nsequential (%d):", label, len(want.Problems))
		for _, p := range want.Problems {
			t.Logf("  %s", p)
		}
		t.Logf("parallel (%d):", len(got.Problems))
		for _, p := range got.Problems {
			t.Logf("  %s", p)
		}
		return
	}
	if want.InodesChecked != got.InodesChecked || want.BlocksOwned != got.BlocksOwned ||
		want.DirsWalked != got.DirsWalked || want.ChecksRun != got.ChecksRun {
		t.Errorf("%s: stats diverge: sequential {%d %d %d %d}, parallel {%d %d %d %d}",
			label, want.InodesChecked, want.BlocksOwned, want.DirsWalked, want.ChecksRun,
			got.InodesChecked, got.BlocksOwned, got.DirsWalked, got.ChecksRun)
	}
	if want.Unreadable != got.Unreadable {
		t.Errorf("%s: Unreadable diverges: %v vs %v", label, want.Unreadable, got.Unreadable)
	}
}

// TestParallelMatchesSequentialDifferential runs the differential corpus:
// clean, crafted-corrupt, garbage, and fault-injected images, each checked
// sequentially and at several worker counts. Findings, order, and stats must
// be identical.
func TestParallelMatchesSequentialDifferential(t *testing.T) {
	images := []struct {
		name  string
		build func(t *testing.T) *blockdev.Mem
	}{
		{"fresh", func(t *testing.T) *blockdev.Mem {
			dev, _ := freshImage(t)
			return dev
		}},
		{"populated", func(t *testing.T) *blockdev.Mem {
			dev, _ := populatedImage(t, 7)
			return dev
		}},
		{"ghost inode", func(t *testing.T) *blockdev.Mem {
			dev, sb := populatedImage(t, 8)
			ghost := findFreeInode(t, dev, sb)
			rewriteInode(t, dev, sb, ghost, func(ino *disklayout.Inode) {
				ino.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
				ino.Nlink = 1
			})
			return dev
		}},
		{"nlink lie", func(t *testing.T) *blockdev.Mem {
			dev, sb := populatedImage(t, 9)
			forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
				if rec.IsFile() && rec.Nlink == 1 {
					rewriteInode(t, dev, sb, ino, func(r *disklayout.Inode) { r.Nlink = 5 })
					return false
				}
				return true
			})
			return dev
		}},
		{"owned block free in bitmap", func(t *testing.T) *blockdev.Mem {
			dev, sb := populatedImage(t, 10)
			forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
				if rec.IsFile() && rec.Direct[0] != 0 {
					clearBlockBit(t, dev, sb, rec.Direct[0])
					return false
				}
				return true
			})
			return dev
		}},
		{"pointer outside data region", func(t *testing.T) *blockdev.Mem {
			dev, sb := populatedImage(t, 11)
			rewriteInode(t, dev, sb, sb.RootIno, func(ino *disklayout.Inode) {
				ino.Direct[1] = 2
			})
			return dev
		}},
		{"superblock bitflip", func(t *testing.T) *blockdev.Mem {
			dev, _ := populatedImage(t, 12)
			mustCorrupt(t, dev, 0, 13, 0xFF)
			return dev
		}},
		{"garbage", func(t *testing.T) *blockdev.Mem {
			dev := blockdev.NewMem(256)
			b := make([]byte, disklayout.BlockSize)
			x := uint64(3)*2654435761 + 1
			for blk := uint32(0); blk < 256; blk++ {
				for i := range b {
					x = x*6364136223846793005 + 1442695040888963407
					b[i] = byte(x >> 33)
				}
				if err := dev.WriteBlock(blk, b); err != nil {
					t.Fatal(err)
				}
			}
			return dev
		}},
		{"deterministic read fault in table", func(t *testing.T) *blockdev.Mem {
			dev, sb := populatedImage(t, 13)
			plan := blockdev.NewFaultPlan(1)
			plan.ReadErrBlocks = map[uint32]bool{sb.InodeTableStart + 1: true}
			dev.SetFaults(plan)
			return dev
		}},
		{"unreadable superblock", func(t *testing.T) *blockdev.Mem {
			dev, _ := populatedImage(t, 14)
			plan := blockdev.NewFaultPlan(1)
			plan.ReadErrBlocks = map[uint32]bool{0: true}
			dev.SetFaults(plan)
			return dev
		}},
	}
	for _, img := range images {
		t.Run(img.name, func(t *testing.T) {
			dev := img.build(t)
			seq := Check(dev)
			for _, w := range []int{1, 2, 4, 8} {
				par := CheckParallel(dev, w)
				requireSameReport(t, seq, par, img.name)
				if par.Workers != w {
					t.Errorf("Workers = %d, want %d", par.Workers, w)
				}
			}
		})
	}
}

// TestCheckScopedFullCoverageDelegates: a scope spanning the whole inode
// table buys nothing over the full parallel check, so CheckScoped runs it —
// strictly stronger, same cost.
func TestCheckScopedFullCoverageDelegates(t *testing.T) {
	dev, sb := populatedImage(t, 21)
	sc := NewScope()
	for i := uint32(0); i < sb.InodeTableLen; i++ {
		sc.Add(sb.InodeTableStart + i)
	}
	rep := CheckScoped(dev, sc, 4)
	if rep.Scoped {
		t.Error("full-coverage scope still reported Scoped")
	}
	requireSameReport(t, Check(dev), rep, "full-coverage scope")
}

// TestCheckScopedFindsInScopeOnly pins the scoped check's semantics: damage
// inside the scope is found, damage outside is (by design) not — that is
// exactly the contract the supervisor's verified-baseline bookkeeping
// depends on, and the scrubber exists to cover the difference.
func TestCheckScopedFindsInScopeOnly(t *testing.T) {
	dev, sb := populatedImage(t, 22)
	// Ghost inodes in two different table blocks.
	bm, err := dev.ReadBlock(sb.InodeBitmapStart)
	if err != nil {
		t.Fatal(err)
	}
	var ghosts []uint32
	ghostBlocks := map[uint32]bool{}
	for ino := uint32(2); ino < sb.NumInodes && len(ghosts) < 2; ino++ {
		blk, _ := sb.InodeLoc(ino)
		if !disklayout.TestBit(bm, ino) && !ghostBlocks[blk] {
			ghostBlocks[blk] = true
			ghosts = append(ghosts, ino)
		}
	}
	if len(ghosts) < 2 {
		t.Fatal("could not place ghosts in two table blocks")
	}
	for _, g := range ghosts {
		rewriteInode(t, dev, sb, g, func(ino *disklayout.Inode) {
			ino.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
			ino.Nlink = 1
		})
	}
	inBlk, _ := sb.InodeLoc(ghosts[0])
	sc := NewScope()
	sc.Add(0)
	sc.Add(inBlk)
	rep := CheckScoped(dev, sc, 4)
	if !rep.Scoped || rep.ScopeBlocks != 2 {
		t.Errorf("Scoped=%v ScopeBlocks=%d, want true/2", rep.Scoped, rep.ScopeBlocks)
	}
	foundIn, foundOut := false, false
	for _, p := range rep.Problems {
		if !strings.Contains(p.What, "ghost") {
			continue
		}
		switch p.Where {
		case fmt.Sprintf("inode %d", ghosts[0]):
			foundIn = true
		case fmt.Sprintf("inode %d", ghosts[1]):
			foundOut = true
		}
	}
	if !foundIn {
		t.Error("in-scope ghost not reported")
	}
	if foundOut {
		t.Error("out-of-scope ghost reported by a scoped check")
	}
	// The full check sees both.
	n := 0
	for _, p := range Check(dev).Problems {
		if strings.Contains(p.What, "ghost") {
			n++
		}
	}
	if n != 2 {
		t.Errorf("full check found %d ghosts, want 2", n)
	}
}

// bigImage formats a device large enough to need two block-bitmap blocks and
// populates it through the base filesystem.
func bigImage(t *testing.T, seed int64) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(disklayout.BitsPerBlock + 4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if sb.BlockBitmapLen < 2 {
		t.Fatalf("BlockBitmapLen = %d, want >= 2", sb.BlockBitmapLen)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: seed, NumOps: 200, Superblock: sb,
	})
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(fs, o)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	return dev, sb
}

// TestBitmapReadFaultDegradesPerBlock is the regression test for the
// partial-read bug: a read error on bitmap block k used to poison the whole
// bitmap load. Now it must degrade to a per-block finding, keep every bit
// that did read, and skip (not invent) findings in the unknown range.
func TestBitmapReadFaultDegradesPerBlock(t *testing.T) {
	dev, sb := bigImage(t, 31)

	// Plant a bitmap lie in the low (readable) bitmap block: an owned block
	// cleared in the bitmap.
	planted := false
	forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
		if p := firstDataBlock(rec); rec.IsFile() && p != 0 && p < disklayout.BitsPerBlock {
			clearBlockBit(t, dev, sb, p)
			planted = true
			return false
		}
		return true
	})
	if !planted {
		t.Fatal("no file block below BitsPerBlock to plant the lie on")
	}

	// Fail the second block-bitmap block.
	bad := sb.BlockBitmapStart + 1
	plan := blockdev.NewFaultPlan(1)
	plan.ReadErrBlocks = map[uint32]bool{bad: true}
	dev.SetFaults(plan)

	rep := Check(dev)
	if rep.Unreadable {
		t.Fatal("bitmap fault marked the whole device unreadable")
	}
	var unreadableFinding, lieFinding bool
	for _, p := range rep.Problems {
		if p.Where == fmt.Sprintf("bitmap block %d", bad) && strings.Contains(p.What, "unreadable") {
			unreadableFinding = true
		}
		if strings.Contains(p.What, "free in bitmap") {
			lieFinding = true
		}
		// The unknown range reads as all-zero; no bitmap-consistency finding
		// (lie or leak) may be invented for blocks covered by the bad block.
		if strings.Contains(p.What, "free in bitmap") || strings.Contains(p.What, "leak") {
			var blk uint32
			if _, err := fmt.Sscanf(p.Where, "block %d", &blk); err == nil && blk >= disklayout.BitsPerBlock {
				t.Errorf("finding in unknown bitmap range: %s", p)
			}
		}
	}
	if !unreadableFinding {
		t.Error("unreadable bitmap block not reported as a per-block finding")
	}
	if !lieFinding {
		t.Error("bitmap lie in the readable range was masked by the degraded block")
	}
	// Same degradation must hold through the parallel front end.
	requireSameReport(t, rep, CheckParallel(dev, 4), "degraded bitmaps")
}

// TestExitCodeContract pins the cmd/fsck exit-code mapping: 0 clean,
// 1 warnings only, 2 corrupt, 3 unreadable.
func TestExitCodeContract(t *testing.T) {
	// Clean.
	dev, _ := freshImage(t)
	if rep := Check(dev); rep.ExitCode() != 0 {
		t.Errorf("clean image: exit %d, want 0 (%v)", rep.ExitCode(), rep.Problems)
	}

	// Warnings only: an orphan (allocated, valid record, nlink 0, unreachable).
	dev, sb := populatedImage(t, 41)
	orphan := findFreeInode(t, dev, sb)
	setInodeBit(t, dev, sb, orphan)
	rewriteInode(t, dev, sb, orphan, func(ino *disklayout.Inode) {
		ino.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
		ino.Nlink = 0
	})
	rep := Check(dev)
	if rep.ExitCode() != 1 || rep.Warnings() == 0 || rep.CorruptCount() != 0 {
		t.Errorf("orphan image: exit %d (%d warnings, %d corrupt), want 1",
			rep.ExitCode(), rep.Warnings(), rep.CorruptCount())
	}

	// Corrupt.
	dev, sb = populatedImage(t, 42)
	ghost := findFreeInode(t, dev, sb)
	rewriteInode(t, dev, sb, ghost, func(ino *disklayout.Inode) {
		ino.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
		ino.Nlink = 1
	})
	if rep := Check(dev); rep.ExitCode() != 2 {
		t.Errorf("ghost image: exit %d, want 2", rep.ExitCode())
	}

	// Unreadable: the superblock itself cannot be read.
	dev, _ = populatedImage(t, 43)
	plan := blockdev.NewFaultPlan(1)
	plan.ReadErrBlocks = map[uint32]bool{0: true}
	dev.SetFaults(plan)
	rep = Check(dev)
	if rep.ExitCode() != 3 || !rep.Unreadable {
		t.Errorf("unreadable image: exit %d (Unreadable=%v), want 3/true", rep.ExitCode(), rep.Unreadable)
	}

	// Repair grades severity on the same thresholds: repairing the orphan
	// image brings its exit code to 0.
	dev, sb = populatedImage(t, 44)
	orphan = findFreeInode(t, dev, sb)
	setInodeBit(t, dev, sb, orphan)
	rewriteInode(t, dev, sb, orphan, func(ino *disklayout.Inode) {
		ino.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
		ino.Nlink = 0
	})
	post, st, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if st.OrphansFreed == 0 {
		t.Error("repair freed no orphans")
	}
	if post.ExitCode() != 0 {
		t.Errorf("post-repair exit %d, want 0: %v", post.ExitCode(), post.Problems)
	}
}
