// Package fsck is the structural filesystem checker.
//
// The paper assigns the checker a load-bearing role: the shadow must be
// "robust against crashes given a crafted filesystem image and call
// sequence", which "essentially requir[es] a verified version of the
// filesystem checker (FSCK)" (§4.3) — crafted images that bypass e2fsck and
// crash the kernel are one of the motivating bug classes (§2.1). This
// checker is therefore written in the shadow's style: it trusts nothing,
// validates every structure it touches, never panics on malformed input,
// and reports a typed problem list instead of wandering into undefined
// behavior.
//
// Checks performed:
//
//	superblock   decode, checksum, geometry
//	inode table  record checksums, types, sizes, pointer ranges
//	extents      reachable data/indirect blocks in range, no double owners
//	bitmaps      allocated state consistent with ownership; leaks flagged
//	directories  dirent decoding, referenced inodes allocated, type match,
//	             acyclic reachability from the root, single parent per dir
//	link counts  file nlink == referencing dirents; dir nlink == 2+subdirs
//	orphans      allocated inodes unreachable from the root
//
// Three entry points share one rule engine: Check (sequential baseline),
// CheckParallel (pFSCK-style striped scan feeding the same merge, see
// parallel.go), and CheckScoped (region-scoped verification, see scope.go).
package fsck

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// Severity grades a problem.
type Severity int

// Severities.
const (
	// Warn marks benign inconsistencies (leaked blocks, harmless slack).
	Warn Severity = iota
	// Corrupt marks structural damage that makes the image unsafe to use.
	Corrupt
)

// Problem is one finding.
type Problem struct {
	Severity Severity
	// Where locates the problem ("inode 7", "block 1042", "dir /a/b").
	Where string
	// What describes it.
	What string
}

// String formats the problem for reports.
func (p Problem) String() string {
	sev := "warn"
	if p.Severity == Corrupt {
		sev = "CORRUPT"
	}
	return fmt.Sprintf("[%s] %s: %s", sev, p.Where, p.What)
}

// Report is the checker's output.
type Report struct {
	Problems []Problem
	// Unreadable is set when the device itself could not be read well enough
	// to check anything (the superblock read failed). Distinct from a
	// readable-but-corrupt image for exit-code purposes.
	Unreadable bool
	// Scoped marks a region-scoped (partial) check: a clean scoped report
	// vouches only for the blocks in scope, not the whole image.
	Scoped bool
	// ScopeBlocks is the number of blocks in scope for a scoped check.
	ScopeBlocks int
	// Workers records the worker-pool size used (0 = sequential).
	Workers int
	// Stats for experiment output.
	InodesChecked int
	BlocksOwned   int
	DirsWalked    int
	ChecksRun     int64
	// fix carries typed, repairable findings for Repair.
	fix *repairables
}

// Clean reports whether no corruption-grade problems were found.
func (r *Report) Clean() bool { return r.CorruptCount() == 0 }

// CorruptCount returns the number of corruption-grade findings.
func (r *Report) CorruptCount() int {
	n := 0
	for _, p := range r.Problems {
		if p.Severity == Corrupt {
			n++
		}
	}
	return n
}

// Warnings returns the number of warning-grade findings.
func (r *Report) Warnings() int {
	n := 0
	for _, p := range r.Problems {
		if p.Severity == Warn {
			n++
		}
	}
	return n
}

// ExitCode maps the report onto the cmd/fsck exit contract:
// 0 clean, 1 warnings only, 2 corruption found, 3 device unreadable.
// Check and Repair produce reports through the same code path, so the
// severity thresholds here are consistent between the two.
func (r *Report) ExitCode() int {
	switch {
	case r.Unreadable:
		return 3
	case r.CorruptCount() > 0:
		return 2
	case r.Warnings() > 0:
		return 1
	}
	return 0
}

// Err returns an fserr.ErrCorrupt-wrapped summary if the image is unsafe.
func (r *Report) Err() error {
	if r.Clean() {
		return nil
	}
	n := 0
	var first Problem
	for _, p := range r.Problems {
		if p.Severity == Corrupt {
			if n == 0 {
				first = p
			}
			n++
		}
	}
	return fmt.Errorf("fsck: %d corruption problems, first: %s: %w", n, first, fserr.ErrCorrupt)
}

func (r *Report) add(sev Severity, where, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{Severity: sev, Where: where, What: fmt.Sprintf(format, args...)})
}

func (r *Report) check() { r.ChecksRun++ }

// devReader is the read surface the rule engine needs. blockdev.Device
// satisfies it; so does the prefetch cache the parallel checker warms.
type devReader interface {
	ReadBlock(blk uint32) ([]byte, error)
	NumBlocks() uint32
}

// checker carries the walk state.
type checker struct {
	dev devReader
	sb  *disklayout.Superblock
	rep *Report
	// owner maps each owned block to the inode that claims it.
	owner map[uint32]uint32
	// ibm/bbm are the on-disk bitmaps. Unreadable bitmap blocks degrade to
	// zero-filled ranges recorded in ibmUnk/bbmUnk: bit state there is
	// unknown, so checks that depend on it are skipped rather than aborting
	// the whole pass (or inventing problems from the zero fill).
	ibm, bbm []byte
	ibmUnk   map[uint32]bool
	bbmUnk   map[uint32]bool
	// inodes caches decoded records by number (nil = undecodable).
	inodes map[uint32]*disklayout.Inode
	// reach marks inodes reachable from the root; value is the dirent count.
	linkCount map[uint32]int
	subdirs   map[uint32]int
	dirSeen   map[uint32]bool
}

// Check validates the entire image and returns a report. It never panics on
// malformed input; any problem becomes a report entry.
func Check(dev blockdev.Device) *Report { return run(dev) }

// run is the sequential rule engine, shared verbatim by Check and (over a
// prefetched block cache) CheckParallel, so the two produce identical
// finding lists by construction.
func run(dev devReader) *Report {
	rep, c := prepare(dev)
	if c == nil {
		return rep
	}
	c.checkInodes()
	c.walkDirs()
	c.checkLinkCounts()
	c.checkBitmapConsistency()
	c.checkBackupSuperblock()
	return rep
}

// checkBackupSuperblock validates the backup copy in the image's last block.
// A backup that fails its checksum is only a warning — a crash can tear it,
// and recovery heals it — but a well-formed backup that disagrees with the
// primary's geometry means the two copies describe different filesystems,
// and a missing allocation bit would let the allocator hand the block out as
// data; both are corruption.
func (c *checker) checkBackupSuperblock() {
	blk := c.sb.BackupBlk()
	c.rep.check()
	if c.blockBitKnown(blk) && !disklayout.TestBit(c.bbm, blk) {
		c.rep.add(Corrupt, "backup superblock", "block %d free in bitmap", blk)
	}
	b, err := c.dev.ReadBlock(blk)
	if err != nil {
		c.rep.add(Warn, "backup superblock", "unreadable: %v", err)
		return
	}
	bsb, err := disklayout.DecodeSuperblock(b)
	if err != nil {
		c.rep.add(Warn, "backup superblock", "invalid (healed on next recovery): %v", err)
		return
	}
	// Mutable fields (Clean, Generation, LastClock) legitimately lag the
	// primary; the geometry must match exactly.
	p, q := *c.sb, *bsb
	p.Clean, q.Clean = 0, 0
	p.Generation, q.Generation = 0, 0
	p.LastClock, q.LastClock = 0, 0
	if p != q {
		c.rep.add(Corrupt, "backup superblock", "geometry disagrees with primary")
	}
}

// prepare performs the superblock and bitmap phase. A nil checker means the
// image failed early validation and rep already holds the reason.
func prepare(dev devReader) (*Report, *checker) { return prepareScoped(dev, nil) }

// prepareScoped is prepare restricted to a scope: only the bitmap blocks
// covering scoped structures are read — the rest become silently unknown,
// the same degraded state an unreadable bitmap block produces, so every
// downstream bitmap check skips them. This keeps the scoped check's IO
// proportional to the scope instead of the image's bitmap size. A nil scope
// loads everything.
func prepareScoped(dev devReader, sc *Scope) (*Report, *checker) {
	rep := &Report{fix: &repairables{nlinkFix: map[uint32]uint16{}}}
	b, err := dev.ReadBlock(0)
	if err != nil {
		rep.add(Corrupt, "superblock", "unreadable: %v", err)
		rep.Unreadable = true
		return rep, nil
	}
	rep.check()
	sb, err := disklayout.DecodeSuperblock(b)
	if err != nil {
		rep.add(Corrupt, "superblock", "%v", err)
		return rep, nil
	}
	if sb.NumBlocks > dev.NumBlocks() {
		rep.add(Corrupt, "superblock", "claims %d blocks, device has %d", sb.NumBlocks, dev.NumBlocks())
		return rep, nil
	}
	c := &checker{
		dev: dev, sb: sb, rep: rep,
		owner:     make(map[uint32]uint32),
		inodes:    make(map[uint32]*disklayout.Inode),
		linkCount: make(map[uint32]int),
		subdirs:   make(map[uint32]int),
		dirSeen:   make(map[uint32]bool),
	}
	c.loadBitmaps(sc)
	return rep, c
}

// bitmapCoverage maps a scope to the bitmap blocks the scoped check needs:
// bitmap blocks in scope themselves, the inode-bitmap blocks covering the
// inodes of scoped table blocks (ghost/orphan bits), and the block-bitmap
// blocks covering every scoped block (ownership-lie bits for claims that
// land inside the scope). Both sets are O(scope), never O(image).
func bitmapCoverage(sb *disklayout.Superblock, sc *Scope) (ibmNeed, bbmNeed map[uint32]bool) {
	ibmNeed = make(map[uint32]bool)
	bbmNeed = make(map[uint32]bool)
	for blk := range sc.m {
		if blk >= sb.InodeBitmapStart && blk < sb.InodeBitmapStart+sb.InodeBitmapLen {
			ibmNeed[blk-sb.InodeBitmapStart] = true
		}
		if blk >= sb.BlockBitmapStart && blk < sb.BlockBitmapStart+sb.BlockBitmapLen {
			bbmNeed[blk-sb.BlockBitmapStart] = true
		}
		if blk >= sb.InodeTableStart && blk < sb.InodeTableStart+sb.InodeTableLen {
			// InodesPerBlock divides BitsPerBlock, so one table block's inode
			// range never straddles two bitmap blocks.
			ino := (blk - sb.InodeTableStart) * disklayout.InodesPerBlock
			ibmNeed[ino/disklayout.BitsPerBlock] = true
		}
		bbmNeed[blk/disklayout.BitsPerBlock] = true
	}
	return ibmNeed, bbmNeed
}

// loadBitmaps reads both allocation bitmaps. An unreadable bitmap block
// degrades to a per-block finding plus an "unknown" range — it no longer
// aborts the whole check, so one bad bitmap block cannot mask every other
// problem on the image. A non-nil scope restricts the reads to the blocks
// bitmapCoverage derives; the rest are silently unknown.
func (c *checker) loadBitmaps(sc *Scope) {
	var ibmNeed, bbmNeed map[uint32]bool
	if sc != nil {
		ibmNeed, bbmNeed = bitmapCoverage(c.sb, sc)
	}
	read := func(start, n uint32, unk, need map[uint32]bool) []byte {
		out := make([]byte, 0, int(n)*disklayout.BlockSize)
		for i := uint32(0); i < n; i++ {
			if need != nil && !need[i] {
				unk[i] = true
				out = append(out, make([]byte, disklayout.BlockSize)...)
				continue
			}
			b, err := c.dev.ReadBlock(start + i)
			if err != nil {
				c.rep.add(Corrupt, fmt.Sprintf("bitmap block %d", start+i), "unreadable: %v", err)
				unk[i] = true
				out = append(out, make([]byte, disklayout.BlockSize)...)
				continue
			}
			out = append(out, b...)
		}
		return out
	}
	c.ibmUnk = make(map[uint32]bool)
	c.bbmUnk = make(map[uint32]bool)
	c.ibm = read(c.sb.InodeBitmapStart, c.sb.InodeBitmapLen, c.ibmUnk, ibmNeed)
	c.bbm = read(c.sb.BlockBitmapStart, c.sb.BlockBitmapLen, c.bbmUnk, bbmNeed)
}

// inodeBitKnown reports whether ino's allocation bit came from a readable
// bitmap block.
func (c *checker) inodeBitKnown(ino uint32) bool {
	return len(c.ibmUnk) == 0 || !c.ibmUnk[ino/disklayout.BitsPerBlock]
}

// blockBitKnown is inodeBitKnown for the block bitmap.
func (c *checker) blockBitKnown(blk uint32) bool {
	return len(c.bbmUnk) == 0 || !c.bbmUnk[blk/disklayout.BitsPerBlock]
}

// readInode decodes inode number ino from the table, caching the result.
func (c *checker) readInode(ino uint32) *disklayout.Inode {
	if rec, ok := c.inodes[ino]; ok {
		return rec
	}
	blk, off := c.sb.InodeLoc(ino)
	b, err := c.dev.ReadBlock(blk)
	if err != nil {
		c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "table block unreadable: %v", err)
		c.inodes[ino] = nil
		return nil
	}
	c.rep.check()
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "%v", err)
		c.inodes[ino] = nil
		return nil
	}
	c.inodes[ino] = rec
	return rec
}

// own claims a block for an inode, reporting double ownership, range
// violations, and bitmap lies.
func (c *checker) own(ino, blk uint32) bool {
	c.rep.check()
	if blk < c.sb.DataStart || blk >= c.sb.NumBlocks {
		c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "claims block %d outside data region", blk)
		return false
	}
	if prev, taken := c.owner[blk]; taken {
		lo, hi := prev, ino
		if lo > hi {
			lo, hi = hi, lo
		}
		c.rep.add(Corrupt, fmt.Sprintf("block %d", blk), "owned by both inode %d and inode %d", lo, hi)
		return false
	}
	c.owner[blk] = ino
	c.rep.BlocksOwned++
	if c.blockBitKnown(blk) && !disklayout.TestBit(c.bbm, blk) {
		c.rep.add(Corrupt, fmt.Sprintf("block %d", blk), "in use by inode %d but free in bitmap", ino)
	}
	return true
}

// blocksOf walks an inode's block map, claiming every block and returning
// the number of data blocks (for size plausibility). Extent inodes walk
// their run list (claiming overflow node blocks and every block of every
// run); legacy inodes walk the direct/indirect pointer tree.
func (c *checker) blocksOf(ino uint32, rec *disklayout.Inode) int64 {
	if rec.IsExtents() {
		return c.blocksOfExtents(ino, rec)
	}
	var data int64
	for _, p := range rec.Direct {
		if p != 0 && c.own(ino, p) {
			data++
		}
	}
	readPtrs := func(blk uint32) []uint32 {
		b, err := c.dev.ReadBlock(blk)
		if err != nil {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "indirect block %d unreadable: %v", blk, err)
			return nil
		}
		out := make([]uint32, disklayout.PtrsPerBlock)
		for i := range out {
			out[i] = uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
		}
		return out
	}
	if rec.Indirect != 0 && c.own(ino, rec.Indirect) {
		for _, p := range readPtrs(rec.Indirect) {
			if p != 0 && c.own(ino, p) {
				data++
			}
		}
	}
	if rec.DblIndir != 0 && c.own(ino, rec.DblIndir) {
		for _, l2 := range readPtrs(rec.DblIndir) {
			if l2 != 0 && c.own(ino, l2) {
				for _, p := range readPtrs(l2) {
					if p != 0 && c.own(ino, p) {
						data++
					}
				}
			}
		}
	}
	return data
}

// blocksOfExtents is the FlagExtents arm of blocksOf: it claims every
// overflow node block and every block of every run, validating run bounds
// and file-space ordering as it goes. Runs are claimed block-by-block so
// double-ownership detection works at the same granularity as the legacy
// walk. A broken chain (bad checksum, cycle, out-of-range node pointer)
// terminates the walk with a corruption finding; blocks claimed before the
// break stay claimed.
func (c *checker) blocksOfExtents(ino uint32, rec *disklayout.Inode) int64 {
	var data int64
	var prevEnd uint64
	read := c.dev.ReadBlock
	nodeFn := func(blk uint32) error {
		c.own(ino, blk)
		return nil
	}
	extFn := func(e disklayout.Extent) error {
		c.rep.check()
		if err := c.sb.ValidateExtent(e); err != nil {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "%v", err)
			return nil
		}
		if uint64(e.FileOff) < prevEnd {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino),
				"extent at file block %d overlaps previous run ending at %d", e.FileOff, prevEnd)
			return nil
		}
		prevEnd = uint64(e.FileOff) + uint64(e.Len)
		for i := uint32(0); i < e.Len; i++ {
			if c.own(ino, e.Start+i) {
				data++
			}
		}
		return nil
	}
	if err := rec.ExtentWalk(c.sb, read, nodeFn, extFn); err != nil {
		c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "extent walk: %v", err)
	}
	return data
}

// checkInodes validates every inode record against its bitmap state and
// claims its blocks.
func (c *checker) checkInodes() {
	for ino := uint32(1); ino < c.sb.NumInodes; ino++ {
		c.checkInode(ino)
	}
}

// checkInode validates one inode record (one iteration of the table scan);
// CheckScoped reuses it for the inodes its scope implicates.
func (c *checker) checkInode(ino uint32) {
	allocated := disklayout.TestBit(c.ibm, ino)
	rec := c.readInode(ino)
	c.rep.InodesChecked++
	if rec == nil {
		return
	}
	if c.inodeBitKnown(ino) {
		if !allocated {
			if !rec.IsFree() {
				c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino),
					"ghost: type %d record but free in bitmap", rec.Type())
				c.rep.fix.ghosts = append(c.rep.fix.ghosts, ino)
			}
			return
		}
		if rec.IsFree() {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "allocated in bitmap but record is free")
			return
		}
	} else if rec.IsFree() {
		// Allocation state unknown (bitmap block unreadable) and the record
		// says free: nothing left to validate.
		return
	}
	if err := rec.ValidatePointers(c.sb); err != nil {
		c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "%v", err)
		return
	}
	if rec.IsExtents() && rec.Type() != disklayout.TypeFile {
		// Only regular files use the extent layout; a flagged directory or
		// symlink would have its inline extent words misread as block
		// pointers by every legacy consumer.
		c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino),
			"extent flag on type %d (only regular files use extents)", rec.Type())
		return
	}
	data := c.blocksOf(ino, rec)
	switch rec.Type() {
	case disklayout.TypeDir:
		if rec.Size%disklayout.BlockSize != 0 {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "directory size %d not block-aligned", rec.Size)
		}
		if rec.Size/disklayout.BlockSize != data {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino),
				"directory size %d implies %d blocks, owns %d", rec.Size, rec.Size/disklayout.BlockSize, data)
		}
	case disklayout.TypeSym:
		if rec.Size > disklayout.BlockSize || data != 1 {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino),
				"symlink size %d with %d data blocks", rec.Size, data)
		}
	case disklayout.TypeFile:
		// Holes make size largely independent of the block count; the
		// only hard bound is that data cannot extend past the size's
		// last block... which holes also relax on shrink-without-free
		// bugs, so only flag the egregious case: blocks but zero size
		// is legal (pre-truncate), size beyond max is caught by decode.
	}
}

// dirent reads a directory's entries, validating as it goes.
func (c *checker) dirents(ino uint32, rec *disklayout.Inode) []disklayout.Dirent {
	var out []disklayout.Dirent
	collect := func(blk uint32) {
		b, err := c.dev.ReadBlock(blk)
		if err != nil {
			c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "directory block %d unreadable: %v", blk, err)
			return
		}
		for s := 0; s < disklayout.DirentsPerBlock; s++ {
			c.rep.check()
			d, err := disklayout.DecodeDirent(b[s*disklayout.DirentSize:])
			if err != nil {
				c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "block %d slot %d: %v", blk, s, err)
				continue
			}
			if d.Ino != 0 {
				out = append(out, d)
			}
		}
	}
	for _, p := range rec.Direct {
		if p != 0 {
			collect(p)
		}
	}
	// Directories in this format never exceed the direct range in practice,
	// but a crafted image may chain indirects; walk them too.
	walkInd := func(blk uint32) {
		b, err := c.dev.ReadBlock(blk)
		if err != nil {
			return
		}
		for i := 0; i < disklayout.PtrsPerBlock; i++ {
			p := uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
			if p != 0 && p >= c.sb.DataStart && p < c.sb.NumBlocks {
				collect(p)
			}
		}
	}
	if rec.Indirect != 0 {
		walkInd(rec.Indirect)
	}
	return out
}

// walkDirs traverses the namespace from the root, counting links and
// detecting cycles / multiple parents.
func (c *checker) walkDirs() {
	rootRec := c.readInode(c.sb.RootIno)
	if rootRec == nil || !rootRec.IsDir() {
		c.rep.add(Corrupt, "root", "root inode is not a directory")
		return
	}
	type frame struct {
		ino  uint32
		path string
	}
	stack := []frame{{c.sb.RootIno, "/"}}
	c.dirSeen[c.sb.RootIno] = true
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c.rep.DirsWalked++
		rec := c.readInode(f.ino)
		if rec == nil {
			continue
		}
		for _, d := range c.dirents(f.ino, rec) {
			child := c.readInode(d.Ino)
			childPath := f.path + d.Name
			if f.path != "/" {
				childPath = f.path + "/" + d.Name
			}
			c.rep.check()
			if d.Ino >= c.sb.NumInodes {
				c.rep.add(Corrupt, "dir "+childPath, "entry references inode %d beyond table", d.Ino)
				continue
			}
			if c.inodeBitKnown(d.Ino) && !disklayout.TestBit(c.ibm, d.Ino) {
				c.rep.add(Corrupt, "dir "+childPath, "entry references free inode %d", d.Ino)
				continue
			}
			if child == nil || child.IsFree() {
				c.rep.add(Corrupt, "dir "+childPath, "entry references invalid inode %d", d.Ino)
				continue
			}
			c.linkCount[d.Ino]++
			if child.IsDir() {
				c.subdirs[f.ino]++
				if c.dirSeen[d.Ino] {
					c.rep.add(Corrupt, "dir "+childPath,
						"directory inode %d reachable twice (cycle or second parent)", d.Ino)
					continue
				}
				c.dirSeen[d.Ino] = true
				stack = append(stack, frame{d.Ino, childPath})
			}
		}
	}
}

// checkLinkCounts compares on-disk nlink with observed references and flags
// unreachable allocated inodes.
func (c *checker) checkLinkCounts() {
	for ino := uint32(1); ino < c.sb.NumInodes; ino++ {
		if c.inodeBitKnown(ino) && !disklayout.TestBit(c.ibm, ino) {
			continue
		}
		rec := c.inodes[ino]
		if rec == nil || rec.IsFree() {
			continue
		}
		c.rep.check()
		refs := c.linkCount[ino]
		switch {
		case rec.IsDir():
			if ino == c.sb.RootIno {
				want := 2 + c.subdirs[ino]
				if int(rec.Nlink) != want {
					c.rep.add(Corrupt, "root", "nlink %d, want %d", rec.Nlink, want)
				}
				continue
			}
			if !c.dirSeen[ino] {
				c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "allocated directory unreachable from root")
				continue
			}
			want := 2 + c.subdirs[ino]
			if int(rec.Nlink) != want {
				c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "directory nlink %d, want %d", rec.Nlink, want)
				c.rep.fix.nlinkFix[ino] = uint16(want)
			}
		default:
			if refs == 0 {
				if rec.Nlink == 0 {
					// Open-but-unlinked at crash time: an orphan, recoverable.
					c.rep.add(Warn, fmt.Sprintf("inode %d", ino), "orphan (nlink 0, unreachable)")
					c.rep.fix.orphans = append(c.rep.fix.orphans, ino)
				} else {
					c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino),
						"unreachable with nlink %d", rec.Nlink)
				}
				continue
			}
			if int(rec.Nlink) != refs {
				c.rep.add(Corrupt, fmt.Sprintf("inode %d", ino), "nlink %d, found %d references", rec.Nlink, refs)
				c.rep.fix.nlinkFix[ino] = uint16(refs)
			}
		}
	}
}

// checkBitmapConsistency flags blocks marked used that nothing owns (leaks).
func (c *checker) checkBitmapConsistency() {
	for blk := c.sb.DataStart; blk < c.sb.NumBlocks; blk++ {
		if blk == c.sb.BackupBlk() {
			// The backup superblock is permanently allocated but owned by no
			// inode; checkBackupSuperblock validates it instead.
			continue
		}
		if !c.blockBitKnown(blk) {
			continue
		}
		used := disklayout.TestBit(c.bbm, blk)
		_, owned := c.owner[blk]
		switch {
		case used && !owned:
			c.rep.add(Warn, fmt.Sprintf("block %d", blk), "allocated in bitmap but unowned (leak)")
			c.rep.fix.leaks = append(c.rep.fix.leaks, blk)
		case !used && owned:
			// own() already reported this as corruption.
		}
	}
}
