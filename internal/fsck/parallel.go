package fsck

import (
	"sync"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

// This file is the parallel front half of the checker (pFSCK-style). The
// design splits the check into an IO-bound scan and a CPU-bound merge:
//
//	scan   a worker pool stripes over the inode-table blocks; each worker
//	       decodes the records in its stripe and immediately pulls the
//	       indirect and directory blocks they reference into a sharded
//	       block cache — so the directory walk's IO is pipelined behind
//	       the table scan instead of serialized after it
//	merge  after the barrier, the sequential rule engine (run in fsck.go)
//	       executes unchanged over the warmed cache at memory speed
//
// Decode results in the scan phase steer prefetch only; every finding,
// claim, and counter is produced by the deterministic merge. That is what
// makes CheckParallel's report identical to Check's by construction — the
// property the differential tests pin.

// cacheShardCount shards the block cache to keep scan workers off one lock.
const cacheShardCount = 16

type cachedBlock struct {
	data []byte
	err  error
}

type cacheShard struct {
	mu sync.Mutex
	m  map[uint32]cachedBlock
}

// cachedReader is a read-through block cache over a device. The first
// outcome stored for a block — payload or error — is authoritative for the
// whole check, so the merge phase sees exactly what the scan phase saw.
// Cached payloads are returned without copying; the checker never mutates
// a block it reads.
type cachedReader struct {
	dev    blockdev.Device
	shards [cacheShardCount]cacheShard
}

func newCachedReader(dev blockdev.Device) *cachedReader {
	c := &cachedReader{dev: dev}
	for i := range c.shards {
		c.shards[i].m = make(map[uint32]cachedBlock)
	}
	return c
}

// NumBlocks reports the underlying device size.
func (c *cachedReader) NumBlocks() uint32 { return c.dev.NumBlocks() }

// ReadBlock returns the cached outcome for blk, reading through on a miss.
func (c *cachedReader) ReadBlock(blk uint32) ([]byte, error) {
	s := &c.shards[blk%cacheShardCount]
	s.mu.Lock()
	if r, ok := s.m[blk]; ok {
		s.mu.Unlock()
		return r.data, r.err
	}
	s.mu.Unlock()
	data, err := c.dev.ReadBlock(blk)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.m[blk]; ok {
		// Another worker raced us to the same block; its outcome stands.
		return r.data, r.err
	}
	s.m[blk] = cachedBlock{data, err}
	return data, err
}

// CheckParallel validates the entire image like Check but with a worker
// pool prefetching the metadata the rule engine will read. It returns the
// identical report Check would produce on the same device; workers < 1 is
// clamped to 1 (a single prefetch worker still coalesces the table to one
// read per block where the sequential checker issues one read per inode).
func CheckParallel(dev blockdev.Device, workers int) *Report {
	if workers < 1 {
		workers = 1
	}
	src := newCachedReader(dev)
	prefetchImage(src, workers)
	rep := run(src)
	rep.Workers = workers
	return rep
}

// prefetchImage warms the cache for a full check: superblock, bitmaps, then
// the striped inode-table scan. Best effort — any failure outcome is cached
// and re-surfaced, with identical messages, by the merge.
func prefetchImage(src *cachedReader, workers int) {
	b, err := src.ReadBlock(0)
	if err != nil {
		return
	}
	sb, err := disklayout.DecodeSuperblock(b)
	if err != nil || sb.NumBlocks > src.NumBlocks() {
		return
	}
	for i := uint32(0); i < sb.InodeBitmapLen; i++ {
		src.ReadBlock(sb.InodeBitmapStart + i)
	}
	for i := uint32(0); i < sb.BlockBitmapLen; i++ {
		src.ReadBlock(sb.BlockBitmapStart + i)
	}
	blks := make([]uint32, sb.InodeTableLen)
	for i := range blks {
		blks[i] = sb.InodeTableStart + uint32(i)
	}
	scanTableBlocks(src, sb, workers, blks)
}

// scanTableBlocks stripes the given table blocks across the worker pool.
func scanTableBlocks(src *cachedReader, sb *disklayout.Superblock, workers int, blks []uint32) {
	var next atomic.Uint32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(blks) {
					return
				}
				scanTableBlock(src, sb, blks[i])
			}
		}()
	}
	wg.Wait()
}

// scanTableBlock reads one inode-table block and prefetches the blocks its
// records reference: indirect/double-indirect spines for claim walking, and
// directory payload blocks for the namespace walk. Over-prefetch (e.g. for
// a ghost inode the merge will not walk) is harmless — unused cache entries
// are never consulted; under-prefetch just falls back to a device read.
func scanTableBlock(src *cachedReader, sb *disklayout.Superblock, blk uint32) {
	b, err := src.ReadBlock(blk)
	if err != nil {
		return
	}
	inRange := func(p uint32) bool { return p >= sb.DataStart && p < sb.NumBlocks }
	base := (blk - sb.InodeTableStart) * disklayout.InodesPerBlock
	for s := 0; s < disklayout.InodesPerBlock; s++ {
		ino := base + uint32(s)
		if ino < 1 || ino >= sb.NumInodes {
			continue
		}
		rec, err := disklayout.DecodeInode(b[s*disklayout.InodeSize : (s+1)*disklayout.InodeSize])
		if err != nil || rec.IsFree() {
			continue
		}
		if rec.IsExtents() {
			// Walk the overflow node chain so the merge's extent walk hits
			// the cache. Decode failures just stop the prefetch; the merge
			// re-reads and reports them.
			next := rec.Indirect
			for hops := 0; next != 0 && inRange(next) && hops < 64; hops++ {
				nb, err := src.ReadBlock(next)
				if err != nil {
					break
				}
				n, err := disklayout.DecodeExtentNode(nb)
				if err != nil {
					break
				}
				next = n.Next
			}
			continue
		}
		if rec.Indirect != 0 && inRange(rec.Indirect) {
			ib, err := src.ReadBlock(rec.Indirect)
			if err == nil && rec.IsDir() {
				// A directory's indirect spine is walked for dirent blocks.
				prefetchPtrs(src, sb, ib)
			}
		}
		if rec.DblIndir != 0 && inRange(rec.DblIndir) {
			if db, err := src.ReadBlock(rec.DblIndir); err == nil {
				// The L2 spine blocks are read during claim walking; their
				// pointees are data and never read.
				prefetchPtrs(src, sb, db)
			}
		}
		if rec.IsDir() {
			for _, p := range rec.Direct {
				if p != 0 {
					src.ReadBlock(p)
				}
			}
		}
	}
}

// prefetchPtrs reads every in-range pointer in an indirect block.
func prefetchPtrs(src *cachedReader, sb *disklayout.Superblock, b []byte) {
	for i := 0; i < disklayout.PtrsPerBlock; i++ {
		p := uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
		if p != 0 && p >= sb.DataStart && p < sb.NumBlocks {
			src.ReadBlock(p)
		}
	}
}
