package fsck

import (
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/mkfs"
)

func TestRepairCleanImageIsNoop(t *testing.T) {
	dev, _ := populatedImage(t, 11)
	rep, st, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Error("clean image unclean after repair")
	}
	if st.OrphansFreed+st.GhostsCleared+st.LeaksFreed+st.NlinksFixed != 0 {
		t.Errorf("no-op repair changed things: %+v", st)
	}
}

func TestRepairFreesOrphan(t *testing.T) {
	dev, _ := freshImage(t)
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := fs.Create("/orphan", 0o644)
	fs.WriteAt(fd, 0, make([]byte, 3*disklayout.BlockSize))
	if err := fs.Unlink("/orphan"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := dev.Snapshot()
	fs.Kill()
	if _, _, err := mkfs.Recover(crash); err != nil {
		t.Fatal(err)
	}
	rep, st, err := Repair(crash)
	if err != nil {
		t.Fatal(err)
	}
	if st.OrphansFreed != 1 {
		t.Errorf("orphans freed = %d, want 1", st.OrphansFreed)
	}
	if st.BlocksFreed < 3 {
		t.Errorf("blocks freed = %d, want >= 3", st.BlocksFreed)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("post-repair: %s", p)
		}
	}
	for _, p := range rep.Problems {
		if p.Severity == Warn {
			t.Errorf("post-repair warning remains: %s", p)
		}
	}
}

func TestRepairFixesNlinkLie(t *testing.T) {
	dev, sb := populatedImage(t, 12)
	var victim uint32
	forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
		if rec.IsFile() && rec.Nlink == 1 {
			victim = ino
			rewriteInode(t, dev, sb, ino, func(r *disklayout.Inode) { r.Nlink = 7 })
			return false
		}
		return true
	})
	if victim == 0 {
		t.Skip("no single-link file")
	}
	rep, st, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if st.NlinksFixed != 1 {
		t.Errorf("nlinks fixed = %d, want 1", st.NlinksFixed)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("post-repair: %s", p)
		}
	}
	rec := mustReadInode(t, dev, sb, victim)
	if rec.Nlink != 1 {
		t.Errorf("nlink after repair = %d", rec.Nlink)
	}
}

func TestRepairClearsGhostAndLeak(t *testing.T) {
	dev, sb := populatedImage(t, 13)
	ghost := findFreeInode(t, dev, sb)
	rewriteInode(t, dev, sb, ghost, func(r *disklayout.Inode) {
		r.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
		r.Nlink = 1
	})
	// Leak a block: set a free data block's bit with no owner. (NumBlocks-1
	// is the backup superblock, legitimately allocated — use the block
	// before it.)
	leakBlk := sb.NumBlocks - 2
	bmBlk := sb.BlockBitmapStart + leakBlk/disklayout.BitsPerBlock
	b, _ := dev.ReadBlock(bmBlk)
	disklayout.SetBit(b, leakBlk%disklayout.BitsPerBlock)
	if err := dev.WriteBlock(bmBlk, b); err != nil {
		t.Fatal(err)
	}
	rep, st, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if st.GhostsCleared != 1 {
		t.Errorf("ghosts cleared = %d, want 1", st.GhostsCleared)
	}
	if st.LeaksFreed != 1 {
		t.Errorf("leaks freed = %d, want 1", st.LeaksFreed)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("post-repair: %s", p)
		}
	}
	// The image is usable again: mount and create.
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	if _, err := fs.Create("/post-repair", 0o644); err != nil {
		t.Errorf("create on repaired image: %v", err)
	}
}

func TestRepairLeavesStructuralDamage(t *testing.T) {
	dev, sb := populatedImage(t, 14)
	// Out-of-region pointer: unrepairable.
	forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
		if rec.IsFile() && firstDataBlock(rec) != 0 {
			rewriteInode(t, dev, sb, ino, func(r *disklayout.Inode) { claimBlock(r, 1) })
			return false
		}
		return true
	})
	rep, _, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Error("repair claimed to fix an out-of-region pointer")
	}
}

func TestRepairBlockBitmapDevice(t *testing.T) {
	// A device-level read error during repair propagates instead of
	// corrupting further.
	dev, _ := populatedImage(t, 15)
	fsBlk := blockdev.NewFaultPlan(1)
	fsBlk.ReadErrProb = 1.0
	dev.SetFaults(fsBlk)
	if _, _, err := Repair(dev); err == nil {
		// Check itself degrades to an unreadable-superblock report; Repair
		// must not invent fixes.
		rep := func() *Report { dev.SetFaults(nil); return Check(dev) }()
		if !rep.Clean() {
			t.Log("device errors produced an unclean report, as expected")
		}
	}
	dev.SetFaults(nil)
}
