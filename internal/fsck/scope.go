package fsck

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

// Region-scoped checking. The recovery pipeline knows which blocks were
// written since the last fully-verified baseline (every write funnels
// through the supervisor's fence) plus which blocks the committed-journal
// overlay replays; CheckScoped verifies only the structures those blocks
// implicate, so the fsck stage of recovery is proportional to the fault's
// blast radius, not the device size.
//
// A clean scoped report vouches for less than a clean full report: it says
// the superblock, the bitmaps, and every inode stored in a scoped
// inode-table block (record validity, pointer ranges, intra-scope block
// ownership, local dirent integrity) are sound. Global invariants that need
// the whole image — namespace reachability, link counts, leak detection,
// cross-scope double ownership — are deliberately out of scope; they are
// re-established by the next full pass (a cold recovery on an unverified
// image, or a background scrub). core only uses scoped checks downstream of
// a verified baseline, and the scrubber exists to refresh that baseline.

// Scope is a set of device blocks implicated by a fault. Not safe for
// concurrent mutation; build it, then hand it to CheckScoped.
type Scope struct {
	m map[uint32]struct{}
}

// NewScope returns an empty scope.
func NewScope() *Scope { return &Scope{m: make(map[uint32]struct{})} }

// Add puts blk in scope.
func (s *Scope) Add(blk uint32) { s.m[blk] = struct{}{} }

// Has reports whether blk is in scope.
func (s *Scope) Has(blk uint32) bool {
	_, ok := s.m[blk]
	return ok
}

// Len returns the number of blocks in scope.
func (s *Scope) Len() int { return len(s.m) }

// CheckScoped verifies the regions of the image implicated by sc using the
// parallel scan engine. The superblock is always checked; bitmap blocks are
// loaded only where they cover scoped structures (the rest degrade to
// unknown, skipping their checks, so the call's IO tracks the scope rather
// than the image's bitmap size); inode records are checked for every
// inode-table block in
// scope, including their extent claims and (for directories) dirent decoding
// and reference validity. If the scope covers the entire inode table the
// call degenerates to CheckParallel, which is strictly stronger and no more
// expensive.
func CheckScoped(dev blockdev.Device, sc *Scope, workers int) *Report {
	if workers < 1 {
		workers = 1
	}
	src := newCachedReader(dev)
	rep, c := prepareScoped(src, sc)
	if c == nil {
		rep.Scoped = true
		rep.ScopeBlocks = sc.Len()
		rep.Workers = workers
		return rep
	}
	sb := c.sb
	tbl := make([]uint32, 0, sb.InodeTableLen)
	full := true
	for i := uint32(0); i < sb.InodeTableLen; i++ {
		if sc.Has(sb.InodeTableStart + i) {
			tbl = append(tbl, sb.InodeTableStart+i)
		} else {
			full = false
		}
	}
	if full {
		return CheckParallel(dev, workers)
	}
	scanTableBlocks(src, sb, workers, tbl)
	forEachScopedInode(sb, tbl, func(ino uint32) { c.checkInode(ino) })
	forEachScopedInode(sb, tbl, func(ino uint32) {
		rec := c.inodes[ino]
		if rec == nil || rec.IsFree() || !rec.IsDir() {
			return
		}
		if c.inodeBitKnown(ino) && !disklayout.TestBit(c.ibm, ino) {
			// Ghost directory: already reported by checkInode, and it is not
			// part of the namespace, so its payload is not checked.
			return
		}
		c.checkDirLocal(ino, rec)
	})
	rep.Scoped = true
	rep.ScopeBlocks = sc.Len()
	rep.Workers = workers
	return rep
}

// forEachScopedInode visits, in ascending inode order, every valid inode
// number stored in the given (sorted) inode-table blocks.
func forEachScopedInode(sb *disklayout.Superblock, tbl []uint32, fn func(ino uint32)) {
	for _, blk := range tbl {
		base := (blk - sb.InodeTableStart) * disklayout.InodesPerBlock
		for s := 0; s < disklayout.InodesPerBlock; s++ {
			ino := base + uint32(s)
			if ino < 1 || ino >= sb.NumInodes {
				continue
			}
			fn(ino)
		}
	}
}

// checkDirLocal validates a directory's entries without the global walk:
// dirent decoding (inside dirents), entry target range, allocation state,
// and record validity. Reachability, cycles, and link counts need the whole
// namespace and are left to full checks.
func (c *checker) checkDirLocal(ino uint32, rec *disklayout.Inode) {
	c.rep.DirsWalked++
	for _, d := range c.dirents(ino, rec) {
		c.rep.check()
		where := fmt.Sprintf("dir inode %d entry %q", ino, d.Name)
		if d.Ino >= c.sb.NumInodes {
			c.rep.add(Corrupt, where, "references inode %d beyond table", d.Ino)
			continue
		}
		child := c.readInode(d.Ino)
		if c.inodeBitKnown(d.Ino) && !disklayout.TestBit(c.ibm, d.Ino) {
			c.rep.add(Corrupt, where, "references free inode %d", d.Ino)
			continue
		}
		if child == nil || child.IsFree() {
			c.rep.add(Corrupt, where, "references invalid inode %d", d.Ino)
		}
	}
}
