package fsck

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
)

// Repairable findings. Check populates these typed lists alongside the
// problem report so Repair can act without re-deriving state.
type repairables struct {
	// orphans are allocated, unreachable inodes with nlink 0 (crash leftovers).
	orphans []uint32
	// ghosts are non-free records under a free bitmap bit.
	ghosts []uint32
	// leaks are data blocks marked allocated that nothing owns.
	leaks []uint32
	// nlinkFix maps inodes to their correct link counts.
	nlinkFix map[uint32]uint16
}

// RepairStats reports what Repair changed.
type RepairStats struct {
	OrphansFreed  int
	GhostsCleared int
	LeaksFreed    int
	NlinksFixed   int
	BlocksFreed   int
}

// Repair checks the image and fixes the repairable classes of damage, in
// the spirit of e2fsck: orphan inodes are released (with their blocks),
// ghost records are overwritten with free records, leaked blocks are
// returned to the free pool, and incorrect link counts are rewritten.
// Structural damage (double-owned blocks, out-of-range pointers, cycles) is
// not repairable here and leaves the returned report unclean.
func Repair(dev blockdev.Device) (*Report, RepairStats, error) {
	var st RepairStats
	rep := Check(dev)
	fx := rep.fix
	if fx == nil {
		return rep, st, nil
	}
	sb, err := readSB(dev)
	if err != nil {
		return rep, st, err
	}

	// Free orphans and their storage.
	for _, ino := range fx.orphans {
		n, err := freeInodeOnDisk(dev, sb, ino)
		if err != nil {
			return rep, st, err
		}
		st.OrphansFreed++
		st.BlocksFreed += n
	}
	// Ghost records: rewrite as free (their bitmap bit is already clear).
	for _, ino := range fx.ghosts {
		if err := writeFreeRecord(dev, sb, ino); err != nil {
			return rep, st, err
		}
		st.GhostsCleared++
	}
	// Leaked blocks: clear their bitmap bits.
	for _, blk := range fx.leaks {
		if err := setBlockBit(dev, sb, blk, false); err != nil {
			return rep, st, err
		}
		st.LeaksFreed++
	}
	// Link counts.
	for ino, want := range fx.nlinkFix {
		if err := rewriteNlink(dev, sb, ino, want); err != nil {
			return rep, st, err
		}
		st.NlinksFixed++
	}
	if err := dev.Flush(); err != nil {
		return rep, st, fmt.Errorf("fsck: repair flush: %w", err)
	}
	// Re-check: the after-repair report is what callers should trust.
	rep = Check(dev)
	return rep, st, nil
}

func readSB(dev blockdev.Device) (*disklayout.Superblock, error) {
	b, err := dev.ReadBlock(0)
	if err != nil {
		return nil, err
	}
	return disklayout.DecodeSuperblock(b)
}

// freeInodeOnDisk releases one inode and every block it owns, returning how
// many blocks were freed.
func freeInodeOnDisk(dev blockdev.Device, sb *disklayout.Superblock, ino uint32) (int, error) {
	blk, off := sb.InodeLoc(ino)
	b, err := dev.ReadBlock(blk)
	if err != nil {
		return 0, err
	}
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		return 0, err
	}
	freed := 0
	free := func(p uint32) error {
		if p == 0 || p < sb.DataStart || p >= sb.NumBlocks {
			return nil
		}
		if err := setBlockBit(dev, sb, p, false); err != nil {
			return err
		}
		freed++
		return nil
	}
	if rec.IsExtents() {
		// Free every run block and every overflow node block. A broken chain
		// stops the walk; whatever was freed before the break stays freed and
		// the re-check after repair reports the remainder.
		var freeErr error
		setErr := func(err error) error {
			freeErr = err
			return err
		}
		_ = rec.ExtentWalk(sb, dev.ReadBlock,
			func(node uint32) error {
				if err := free(node); err != nil {
					return setErr(err)
				}
				return nil
			},
			func(e disklayout.Extent) error {
				if sb.ValidateExtent(e) != nil {
					return nil
				}
				for i := uint32(0); i < e.Len; i++ {
					if err := free(e.Start + i); err != nil {
						return setErr(err)
					}
				}
				return nil
			})
		if freeErr != nil {
			return freed, freeErr
		}
		if err := setInodeBitOnDisk(dev, sb, ino, false); err != nil {
			return freed, err
		}
		return freed, writeFreeRecord(dev, sb, ino)
	}
	for _, p := range rec.Direct {
		if err := free(p); err != nil {
			return freed, err
		}
	}
	walkInd := func(indBlk uint32) error {
		if indBlk == 0 || indBlk < sb.DataStart || indBlk >= sb.NumBlocks {
			return nil
		}
		ib, err := dev.ReadBlock(indBlk)
		if err != nil {
			return err
		}
		for i := 0; i < disklayout.PtrsPerBlock; i++ {
			p := uint32(ib[i*4]) | uint32(ib[i*4+1])<<8 | uint32(ib[i*4+2])<<16 | uint32(ib[i*4+3])<<24
			if err := free(p); err != nil {
				return err
			}
		}
		return free(indBlk)
	}
	if err := walkInd(rec.Indirect); err != nil {
		return freed, err
	}
	if rec.DblIndir != 0 && rec.DblIndir >= sb.DataStart && rec.DblIndir < sb.NumBlocks {
		db, err := dev.ReadBlock(rec.DblIndir)
		if err != nil {
			return freed, err
		}
		for i := 0; i < disklayout.PtrsPerBlock; i++ {
			l2 := uint32(db[i*4]) | uint32(db[i*4+1])<<8 | uint32(db[i*4+2])<<16 | uint32(db[i*4+3])<<24
			if err := walkInd(l2); err != nil {
				return freed, err
			}
		}
		if err := free(rec.DblIndir); err != nil {
			return freed, err
		}
	}
	if err := setInodeBitOnDisk(dev, sb, ino, false); err != nil {
		return freed, err
	}
	return freed, writeFreeRecord(dev, sb, ino)
}

func writeFreeRecord(dev blockdev.Device, sb *disklayout.Superblock, ino uint32) error {
	blk, off := sb.InodeLoc(ino)
	b, err := dev.ReadBlock(blk)
	if err != nil {
		return err
	}
	old, _ := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	gen := uint32(0)
	if old != nil {
		gen = old.Generation
	}
	disklayout.PutInode(b[off:], &disklayout.Inode{Generation: gen})
	return dev.WriteBlock(blk, b)
}

func rewriteNlink(dev blockdev.Device, sb *disklayout.Superblock, ino uint32, nlink uint16) error {
	blk, off := sb.InodeLoc(ino)
	b, err := dev.ReadBlock(blk)
	if err != nil {
		return err
	}
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		return err
	}
	rec.Nlink = nlink
	disklayout.PutInode(b[off:], rec)
	return dev.WriteBlock(blk, b)
}

func setBlockBit(dev blockdev.Device, sb *disklayout.Superblock, blk uint32, v bool) error {
	bmBlk := sb.BlockBitmapStart + blk/disklayout.BitsPerBlock
	b, err := dev.ReadBlock(bmBlk)
	if err != nil {
		return err
	}
	if v {
		disklayout.SetBit(b, blk%disklayout.BitsPerBlock)
	} else {
		disklayout.ClearBit(b, blk%disklayout.BitsPerBlock)
	}
	return dev.WriteBlock(bmBlk, b)
}

func setInodeBitOnDisk(dev blockdev.Device, sb *disklayout.Superblock, ino uint32, v bool) error {
	bmBlk := sb.InodeBitmapStart + ino/disklayout.BitsPerBlock
	b, err := dev.ReadBlock(bmBlk)
	if err != nil {
		return err
	}
	if v {
		disklayout.SetBit(b, ino%disklayout.BitsPerBlock)
	} else {
		disklayout.ClearBit(b, ino%disklayout.BitsPerBlock)
	}
	return dev.WriteBlock(bmBlk, b)
}
