package fsck

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/workload"
)

func freshImage(t *testing.T) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	return dev, sb
}

// populatedImage builds an image by running a workload through the base
// filesystem and unmounting cleanly.
func populatedImage(t *testing.T, seed int64) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev, sb := freshImage(t)
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: seed, NumOps: 300, Superblock: sb,
	})
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(fs, o)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	return dev, sb
}

func TestFreshImageIsClean(t *testing.T) {
	dev, _ := freshImage(t)
	rep := Check(dev)
	for _, p := range rep.Problems {
		t.Errorf("fresh image problem: %s", p)
	}
	if !rep.Clean() || rep.Err() != nil {
		t.Error("fresh image reported unclean")
	}
}

func TestPopulatedImageIsClean(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dev, _ := populatedImage(t, seed)
		rep := Check(dev)
		for _, p := range rep.Problems {
			if p.Severity == Corrupt {
				t.Errorf("seed %d: %s", seed, p)
			}
		}
	}
}

func TestOrphanIsWarningOnly(t *testing.T) {
	dev, _ := freshImage(t)
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := fs.Create("/doomed", 0o644)
	fs.WriteAt(fd, 0, []byte("orphan payload"))
	if err := fs.Unlink("/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash with the fd still open: the on-disk image holds an orphan.
	crash := dev.Snapshot()
	fs.Kill()
	if _, _, err := mkfs.Recover(crash); err != nil {
		t.Fatal(err)
	}
	rep := Check(crash)
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("%s", p)
		}
	}
	found := false
	for _, p := range rep.Problems {
		if p.Severity == Warn && strings.Contains(p.What, "orphan") {
			found = true
		}
	}
	if !found {
		t.Error("orphan not reported")
	}
}

// Crafted-image corpus (experiment E8): every attack must be detected as
// corruption, never a panic.
func TestCraftedImageCorpus(t *testing.T) {
	cases := []struct {
		name  string
		craft func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock)
		want  string // substring expected in some Corrupt problem
	}{
		{
			name: "superblock bitflip",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				mustCorrupt(t, dev, 0, 13, 0xFF)
			},
			want: "checksum",
		},
		{
			name: "inode pointer outside data region",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				rewriteInode(t, dev, sb, sb.RootIno, func(ino *disklayout.Inode) {
					ino.Direct[1] = 2 // bitmap block
				})
			},
			want: "outside data region",
		},
		{
			name: "ghost inode",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				// Allocated-looking record over an inode that is free in the
				// bitmap.
				ghost := findFreeInode(t, dev, sb)
				rewriteInode(t, dev, sb, ghost, func(ino *disklayout.Inode) {
					ino.Mode = disklayout.MkMode(disklayout.TypeFile, 0o644)
					ino.Nlink = 1
				})
			},
			want: "ghost",
		},
		{
			name: "bitmap says allocated, record free",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				setInodeBit(t, dev, sb, findFreeInode(t, dev, sb))
			},
			want: "record is free",
		},
		{
			name: "dirent to free inode",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				// Point the root's first dirent at an unallocated inode. The
				// root has entries from the populated image.
				blk := firstDirBlock(t, dev, sb, sb.RootIno)
				b, _ := dev.ReadBlock(blk)
				d := disklayout.Dirent{Ino: sb.NumInodes - 2, Name: "evil"}
				disklayout.EncodeDirent(b[0:], d)
				if err := dev.WriteBlock(blk, b); err != nil {
					t.Fatal(err)
				}
			},
			want: "free inode",
		},
		{
			name: "directory cycle via crafted entry",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				blk := firstDirBlock(t, dev, sb, sb.RootIno)
				b, _ := dev.ReadBlock(blk)
				// Find a live subdirectory entry and duplicate it under a new
				// name: the directory becomes reachable twice.
				for s := 0; s < disklayout.DirentsPerBlock; s++ {
					d, err := disklayout.DecodeDirent(b[s*disklayout.DirentSize:])
					if err != nil || d.Ino == 0 {
						continue
					}
					rec := mustReadInode(t, dev, sb, d.Ino)
					if rec.IsDir() {
						free := findFreeSlot(t, b)
						disklayout.EncodeDirent(b[free*disklayout.DirentSize:],
							disklayout.Dirent{Ino: d.Ino, Name: "cycle"})
						if err := dev.WriteBlock(blk, b); err != nil {
							t.Fatal(err)
						}
						return
					}
				}
				t.Skip("populated image has no subdirectory in root block 0")
			},
			want: "reachable twice",
		},
		{
			name: "double-owned block",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				// Give two file inodes the same direct block.
				var victim uint32
				var blk uint32
				forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
					if rec.IsFile() && firstDataBlock(rec) != 0 {
						if victim == 0 {
							victim = ino
							blk = firstDataBlock(rec)
							return true
						}
						rewriteInode(t, dev, sb, ino, func(r *disklayout.Inode) {
							claimBlock(r, blk)
						})
						return false
					}
					return true
				})
				if victim == 0 {
					t.Skip("no two files to alias")
				}
			},
			want: "owned by both",
		},
		{
			name: "nlink lie",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
					if rec.IsFile() && rec.Nlink == 1 {
						rewriteInode(t, dev, sb, ino, func(r *disklayout.Inode) {
							r.Nlink = 5
						})
						return false
					}
					return true
				})
			},
			want: "nlink",
		},
		{
			name: "block in use but free in bitmap",
			craft: func(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) {
				forEachInode(t, dev, sb, func(ino uint32, rec *disklayout.Inode) bool {
					if rec.IsFile() && firstDataBlock(rec) != 0 {
						clearBlockBit(t, dev, sb, firstDataBlock(rec))
						return false
					}
					return true
				})
			},
			want: "free in bitmap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev, sb := populatedImage(t, 42)
			tc.craft(t, dev, sb)
			rep := Check(dev) // must not panic
			if rep.Clean() {
				t.Fatalf("crafted image passed fsck")
			}
			if !errors.Is(rep.Err(), fserr.ErrCorrupt) {
				t.Errorf("Err() = %v", rep.Err())
			}
			found := false
			for _, p := range rep.Problems {
				if p.Severity == Corrupt && strings.Contains(p.What, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no Corrupt problem mentioning %q; got:", tc.want)
				for _, p := range rep.Problems {
					t.Logf("  %s", p)
				}
			}
		})
	}
}

func TestCheckRandomGarbageImageNeverPanics(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		dev := blockdev.NewMem(256)
		// Write pseudo-random garbage everywhere, including block 0.
		b := make([]byte, disklayout.BlockSize)
		x := uint64(seed)*2654435761 + 1
		for blk := uint32(0); blk < 256; blk++ {
			for i := range b {
				x = x*6364136223846793005 + 1442695040888963407
				b[i] = byte(x >> 33)
			}
			if err := dev.WriteBlock(blk, b); err != nil {
				t.Fatal(err)
			}
		}
		rep := Check(dev)
		if rep.Clean() {
			t.Errorf("seed %d: garbage image passed", seed)
		}
	}
}

// --- helpers ---

func mustCorrupt(t *testing.T, dev *blockdev.Mem, blk uint32, off int, xor byte) {
	t.Helper()
	if err := dev.CorruptBlock(blk, off, xor); err != nil {
		t.Fatal(err)
	}
}

func mustReadInode(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock, ino uint32) *disklayout.Inode {
	t.Helper()
	blk, off := sb.InodeLoc(ino)
	b, err := dev.ReadBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func rewriteInode(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock, ino uint32, mut func(*disklayout.Inode)) {
	t.Helper()
	blk, off := sb.InodeLoc(ino)
	b, err := dev.ReadBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		t.Fatal(err)
	}
	mut(rec)
	disklayout.PutInode(b[off:], rec) // re-checksummed: a "plausible" attack
	if err := dev.WriteBlock(blk, b); err != nil {
		t.Fatal(err)
	}
}

func findFreeInode(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock) uint32 {
	t.Helper()
	bm, err := dev.ReadBlock(sb.InodeBitmapStart)
	if err != nil {
		t.Fatal(err)
	}
	for ino := uint32(2); ino < sb.NumInodes && ino < disklayout.BitsPerBlock; ino++ {
		if !disklayout.TestBit(bm, ino) {
			return ino
		}
	}
	t.Fatal("no free inode")
	return 0
}

func setInodeBit(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock, ino uint32) {
	t.Helper()
	blk := sb.InodeBitmapStart + ino/disklayout.BitsPerBlock
	b, err := dev.ReadBlock(blk)
	if err != nil {
		t.Fatal(err)
	}
	disklayout.SetBit(b, ino%disklayout.BitsPerBlock)
	if err := dev.WriteBlock(blk, b); err != nil {
		t.Fatal(err)
	}
}

func clearBlockBit(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock, blk uint32) {
	t.Helper()
	bmBlk := sb.BlockBitmapStart + blk/disklayout.BitsPerBlock
	b, err := dev.ReadBlock(bmBlk)
	if err != nil {
		t.Fatal(err)
	}
	disklayout.ClearBit(b, blk%disklayout.BitsPerBlock)
	if err := dev.WriteBlock(bmBlk, b); err != nil {
		t.Fatal(err)
	}
}

func firstDirBlock(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock, ino uint32) uint32 {
	t.Helper()
	rec := mustReadInode(t, dev, sb, ino)
	if rec.Direct[0] == 0 {
		t.Fatal("directory has no blocks")
	}
	return rec.Direct[0]
}

func findFreeSlot(t *testing.T, b []byte) int {
	t.Helper()
	for s := 0; s < disklayout.DirentsPerBlock; s++ {
		d, err := disklayout.DecodeDirent(b[s*disklayout.DirentSize:])
		if err == nil && d.Ino == 0 {
			return s
		}
	}
	t.Fatal("no free dirent slot")
	return 0
}

// firstDataBlock returns the first mapped data block of a file inode under
// either layout (0 if it maps nothing inline).
func firstDataBlock(rec *disklayout.Inode) uint32 {
	if rec.IsExtents() {
		for _, e := range rec.InlineExtents() {
			if e.Len != 0 {
				return e.Start
			}
		}
		return 0
	}
	for _, p := range rec.Direct {
		if p != 0 {
			return p
		}
	}
	return 0
}

// claimBlock rewrites a file record so its mapping claims exactly blk,
// whichever layout the record uses. Previously owned blocks become leaks.
func claimBlock(r *disklayout.Inode, blk uint32) {
	if r.IsExtents() {
		r.SetInlineExtents([]disklayout.Extent{{FileOff: 0, Start: blk, Len: 1}})
		r.Indirect = 0
		return
	}
	r.Direct = [disklayout.NumDirect]uint32{blk}
	r.Indirect = 0
	r.DblIndir = 0
}

func forEachInode(t *testing.T, dev *blockdev.Mem, sb *disklayout.Superblock, f func(uint32, *disklayout.Inode) bool) {
	t.Helper()
	for ino := uint32(1); ino < sb.NumInodes; ino++ {
		blk, off := sb.InodeLoc(ino)
		b, err := dev.ReadBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
		if err != nil || rec.IsFree() {
			continue
		}
		if !f(ino, rec) {
			return
		}
	}
}
