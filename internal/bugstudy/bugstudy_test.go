package bugstudy

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/faultinject"
)

// TestTable1Counts is experiment E1: classifying the corpus must reproduce
// the paper's Table 1 exactly.
func TestTable1Counts(t *testing.T) {
	got := Table1(Corpus())
	if got != Table1Want {
		t.Fatalf("Table 1 mismatch:\n got %v\nwant %v", got, Table1Want)
	}
}

func TestCorpusSize(t *testing.T) {
	c := Corpus()
	if len(c) != 256 {
		t.Fatalf("corpus has %d records, want 256 (paper: 256 bugs since 2013)", len(c))
	}
}

// TestFigure1Counts is experiment E2: the deterministic-bugs-by-year series
// must match the reconstructed figure and sum to the Table 1 deterministic
// row.
func TestFigure1Counts(t *testing.T) {
	got := Figure1(Corpus())
	if len(got) != len(Figure1Want) {
		t.Fatalf("years: got %d, want %d", len(got), len(Figure1Want))
	}
	for y, want := range Figure1Want {
		if got[y] != want {
			t.Errorf("year %d: got %v, want %v", y, got[y], want)
		}
	}
	// Cross-foot: figure sums equal Table 1's deterministic row.
	var sums [4]int
	for _, c := range got {
		sums[0] += c[0] // Crash
		sums[1] += c[1] // WARN
		sums[2] += c[2] // NoCrash
		sums[3] += c[3] // Unknown
	}
	if sums[0] != Table1Want[0][1] || sums[1] != Table1Want[0][2] ||
		sums[2] != Table1Want[0][0] || sums[3] != Table1Want[0][3] {
		t.Errorf("figure sums %v do not cross-foot Table 1 deterministic row %v", sums, Table1Want[0])
	}
}

// TestHeadlineRatio checks the paper's "89/165" detectability claim falls
// out of the corpus.
func TestHeadlineRatio(t *testing.T) {
	detectable, deterministic := DetectableDeterministic(Corpus())
	if deterministic != 165 {
		t.Errorf("deterministic = %d, want 165", deterministic)
	}
	if detectable != 89 {
		t.Errorf("detectable = %d, want 89 (78 Crash + 11 WARN)", detectable)
	}
}

func TestCorpusDeterministicGeneration(t *testing.T) {
	a, b := Corpus(), Corpus()
	if len(a) != len(b) {
		t.Fatal("corpus length varies")
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("record %d differs between generations", i)
		}
	}
}

func TestClassifyRules(t *testing.T) {
	cases := []struct {
		name  string
		r     Record
		wantD Determinism
		wantC Consequence
	}{
		{"reproducible crash", Record{DeterminismKnowable: true, HasReproducer: true, Symptom: SymptomCrash}, Deterministic, Crash},
		{"no reproducer", Record{DeterminismKnowable: true, HasReproducer: false, Symptom: SymptomCrash}, NonDeterministic, Crash},
		{"io interaction", Record{DeterminismKnowable: true, HasReproducer: true, IOInteraction: true, Symptom: SymptomWarn}, NonDeterministic, WARN},
		{"threading", Record{DeterminismKnowable: true, HasReproducer: true, Threading: true, Symptom: SymptomNoCrash}, NonDeterministic, NoCrash},
		{"unknowable", Record{DeterminismKnowable: false, HasReproducer: true, Symptom: SymptomNone}, UnknownDeterminism, UnknownConsequence},
	}
	for _, tc := range cases {
		d, c := Classify(&tc.r)
		if d != tc.wantD || c != tc.wantC {
			t.Errorf("%s: got (%v,%v), want (%v,%v)", tc.name, d, c, tc.wantD, tc.wantC)
		}
	}
}

// TestClassifyTotalProperty: for any record, classification lands in exactly
// one cell and the axes are independent of each other's inputs.
func TestClassifyTotalProperty(t *testing.T) {
	f := func(hasRepro, io, thr, knowable bool, symRaw uint8) bool {
		r := &Record{
			HasReproducer:       hasRepro,
			IOInteraction:       io,
			Threading:           thr,
			DeterminismKnowable: knowable,
			Symptom:             Symptom(symRaw % 4),
		}
		d, c := Classify(r)
		if d < Deterministic || d > UnknownDeterminism || c < NoCrash || c > UnknownConsequence {
			return false
		}
		// Determinism must not depend on the symptom, and vice versa.
		r2 := *r
		r2.Symptom = Symptom((symRaw + 1) % 4)
		d2, _ := Classify(&r2)
		return d2 == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestToSpecimenClasses(t *testing.T) {
	seen := map[faultinject.Consequence]int{}
	deterministic := 0
	for _, r := range Corpus() {
		s := ToSpecimen(r, "create")
		seen[s.Class]++
		if s.Deterministic {
			deterministic++
			if s.Prob != 1 {
				t.Errorf("deterministic specimen %s with prob %v", s.ID, s.Prob)
			}
		}
	}
	if deterministic != 165 {
		t.Errorf("deterministic specimens = %d, want 165", deterministic)
	}
	for _, class := range []faultinject.Consequence{
		faultinject.Crash, faultinject.Warn, faultinject.SilentCorrupt,
		faultinject.Freeze, faultinject.ErrReturn,
	} {
		if seen[class] == 0 {
			t.Errorf("no specimen of class %v in the executable corpus", class)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(Table1(Corpus()))
	for _, want := range []string{"Deterministic", "Non-Deterministic", "165", "83", "256", "No Crash"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigure1(t *testing.T) {
	out := RenderFigure1(Figure1(Corpus()))
	for _, want := range []string{"2013", "2023", "legend", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}
	// The trend the paper highlights: more deterministic bugs fixed in the
	// last four years than the first four.
	fig := Figure1(Corpus())
	early := fig[2013][0] + fig[2013][2] + fig[2014][0] + fig[2014][2] +
		fig[2015][0] + fig[2015][2] + fig[2016][0] + fig[2016][2]
	late := fig[2020][0] + fig[2020][2] + fig[2021][0] + fig[2021][2] +
		fig[2022][0] + fig[2022][2] + fig[2023][0] + fig[2023][2]
	if late <= early {
		t.Errorf("figure trend inverted: early %d, late %d", early, late)
	}
}

func TestYearsSortedAndComplete(t *testing.T) {
	ys := Years()
	if len(ys) != 11 || ys[0] != 2013 || ys[len(ys)-1] != 2023 {
		t.Errorf("Years() = %v", ys)
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] != ys[i-1]+1 {
			t.Errorf("Years() not contiguous: %v", ys)
		}
	}
}
