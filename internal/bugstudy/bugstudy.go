// Package bugstudy reproduces the paper's motivating bug study: Table 1
// (256 Linux ext4 bugs since 2013, classified by determinism and
// consequence) and Figure 1 (deterministic bugs by year of fix, stacked by
// consequence).
//
// The paper mined the ext4 subtree's git log for commits mentioning
// "bugzilla" or "reported by". That corpus is not available offline, so this
// package carries a synthetic structured corpus of 256 bug records whose
// *attributes* (reproducer availability, IO-interaction, threading
// involvement, commit-message symptom, fix year) are generated such that the
// paper's own classification rules, implemented verbatim in Classify,
// reproduce Table 1's cells and Figure 1's yearly totals exactly. The
// substitution is documented in DESIGN.md: what is reproduced is the
// classifier and the published marginals, not the 256 commit hashes.
//
// The corpus is also executable: ToSpecimen converts any record into a
// faultinject specimen of the matching class, which experiment E9 arms
// against the live base filesystem to show RAE masks every detectable class
// the table counts.
package bugstudy

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/faultinject"
)

// Determinism is the study's first axis.
type Determinism int

// Determinism values.
const (
	Deterministic Determinism = iota
	NonDeterministic
	UnknownDeterminism
)

// String returns the row label used in Table 1.
func (d Determinism) String() string {
	switch d {
	case Deterministic:
		return "Deterministic"
	case NonDeterministic:
		return "Non-Deterministic"
	}
	return "Unknown"
}

// Consequence is the study's second axis.
type Consequence int

// Consequence values, in Table 1 column order.
const (
	NoCrash Consequence = iota
	Crash
	WARN
	UnknownConsequence
)

// String returns the column label used in Table 1.
func (c Consequence) String() string {
	switch c {
	case NoCrash:
		return "No Crash"
	case Crash:
		return "Crash"
	case WARN:
		return "WARN"
	}
	return "Unknown"
}

// Symptom is what a commit message reveals about external behavior.
type Symptom int

// Symptom values.
const (
	// SymptomNone: the commit message has no clear clue of external symptoms.
	SymptomNone Symptom = iota
	// SymptomCrash: oops, BUG(), null dereference, use-after-free, hang panic.
	SymptomCrash
	// SymptomWarn: the bug hits a WARN_ON path.
	SymptomWarn
	// SymptomNoCrash: data corruption, performance issue, permission issue,
	// freeze, deadlock, etc. (Figure 1's caption enumerates these.)
	SymptomNoCrash
)

// Record is one bug in the corpus.
type Record struct {
	// ID is a stable synthetic identifier (stands in for a commit hash).
	ID string
	// Year is the year the fix landed (2013–2023).
	Year int
	// Title is a synthetic one-line summary in the style of the cited
	// bugzilla entries.
	Title string
	// HasReproducer reports whether the report carries a reproducer.
	HasReproducer bool
	// IOInteraction marks bugs "related to the interaction with IO (e.g.,
	// multiple inflight requests)".
	IOInteraction bool
	// Threading marks bugs "related to threading".
	Threading bool
	// DeterminismKnowable is false for the handful of bugs whose reports are
	// too sparse to classify on the determinism axis at all.
	DeterminismKnowable bool
	// Symptom is the commit-message evidence for the consequence axis.
	Symptom Symptom
}

// Classify applies the paper's classification rules to one record:
// "Bugs that do not have reproducers, or are related to the interaction
// with IO ..., or are related to threading, are classified as
// non-deterministic. Bugs are classified as Unknown in their consequence
// when the commit message does not contain clear clues of external
// symptoms."
func Classify(r *Record) (Determinism, Consequence) {
	var d Determinism
	switch {
	case !r.DeterminismKnowable:
		d = UnknownDeterminism
	case !r.HasReproducer || r.IOInteraction || r.Threading:
		d = NonDeterministic
	default:
		d = Deterministic
	}
	var c Consequence
	switch r.Symptom {
	case SymptomCrash:
		c = Crash
	case SymptomWarn:
		c = WARN
	case SymptomNoCrash:
		c = NoCrash
	default:
		c = UnknownConsequence
	}
	return d, c
}

// Table1Want holds the paper's published cross-tabulation.
// Rows: Deterministic, NonDeterministic, UnknownDeterminism.
// Columns: NoCrash, Crash, WARN, UnknownConsequence.
var Table1Want = [3][4]int{
	{68, 78, 11, 8}, // Deterministic, total 165
	{31, 26, 19, 7}, // Non-Deterministic, total 83
	{5, 2, 1, 0},    // Unknown, total 8
}

// Figure1Want holds the per-year deterministic-bug counts by consequence,
// reconstructed to match Figure 1's shape (rising totals, 2018 peak) and
// Table 1's deterministic row exactly. Columns: Crash, WARN, NoCrash,
// Unknown (the figure's legend order).
var Figure1Want = map[int][4]int{
	2013: {3, 0, 3, 0},
	2014: {4, 0, 4, 0},
	2015: {4, 0, 5, 0},
	2016: {5, 0, 5, 0},
	2017: {6, 1, 5, 0},
	2018: {12, 2, 10, 1},
	2019: {7, 1, 6, 1},
	2020: {8, 1, 7, 1},
	2021: {10, 2, 9, 1},
	2022: {10, 2, 8, 1},
	2023: {9, 2, 6, 3},
}

// Years returns the study's year range in order.
func Years() []int {
	var ys []int
	for y := range Figure1Want {
		ys = append(ys, y)
	}
	sort.Ints(ys)
	return ys
}

var titleBits = map[Symptom][]string{
	SymptomCrash: {
		"null-pointer dereference in ext4_handle_inode_extension",
		"use-after-free in ext4_put_super",
		"array-index-out-of-bounds in extent lookup",
		"BUG at inode.c when mounting crafted image",
		"kernel oops replaying corrupted journal",
	},
	SymptomWarn: {
		"WARN_ON hit in ext4_da_update_reserve_space",
		"WARN in jbd2 transaction reservation",
		"WARN_ON_ONCE triggered by fallocate past EOF",
	},
	SymptomNoCrash: {
		"data corruption after punch-hole and writeback race",
		"permission bits lost on setattr under quota",
		"performance collapse in block allocator under fragmentation",
		"freeze when orphan list replay loops",
		"deadlock between writeback and truncate",
	},
	SymptomNone: {
		"fix inconsistency reported by syzbot",
		"correct error path reported in bugzilla",
	},
}

// Corpus deterministically generates the 256-record corpus. Classifying the
// returned records reproduces Table1Want and Figure1Want exactly; record
// attributes within a cell are varied pseudo-randomly (seeded) so tests of
// the classifier see diverse inputs.
func Corpus() []*Record {
	rng := rand.New(rand.NewSource(20240708)) // the workshop's first day
	var out []*Record
	id := 0
	mk := func(d Determinism, s Symptom, year int) *Record {
		id++
		r := &Record{
			ID:                  fmt.Sprintf("ext4-bug-%03d", id),
			Year:                year,
			Symptom:             s,
			DeterminismKnowable: d != UnknownDeterminism,
		}
		switch d {
		case Deterministic:
			r.HasReproducer = true
		case NonDeterministic:
			// One of the three non-determinism causes, at least.
			switch rng.Intn(3) {
			case 0:
				r.HasReproducer = false
			case 1:
				r.HasReproducer = true
				r.IOInteraction = true
			default:
				r.HasReproducer = rng.Intn(2) == 0
				r.Threading = true
			}
		case UnknownDeterminism:
			r.HasReproducer = rng.Intn(2) == 0
		}
		bits := titleBits[s]
		r.Title = bits[rng.Intn(len(bits))]
		return r
	}

	// Deterministic records carry the Figure 1 year structure.
	consequenceOf := [4]Symptom{SymptomCrash, SymptomWarn, SymptomNoCrash, SymptomNone}
	for _, year := range Years() {
		counts := Figure1Want[year]
		for ci, n := range counts {
			for i := 0; i < n; i++ {
				out = append(out, mk(Deterministic, consequenceOf[ci], year))
			}
		}
	}
	// Non-deterministic and unknown records get plausible years.
	spread := func(d Determinism, s Symptom, n int) {
		for i := 0; i < n; i++ {
			out = append(out, mk(d, s, 2013+rng.Intn(11)))
		}
	}
	spread(NonDeterministic, SymptomNoCrash, Table1Want[1][0])
	spread(NonDeterministic, SymptomCrash, Table1Want[1][1])
	spread(NonDeterministic, SymptomWarn, Table1Want[1][2])
	spread(NonDeterministic, SymptomNone, Table1Want[1][3])
	spread(UnknownDeterminism, SymptomNoCrash, Table1Want[2][0])
	spread(UnknownDeterminism, SymptomCrash, Table1Want[2][1])
	spread(UnknownDeterminism, SymptomWarn, Table1Want[2][2])
	spread(UnknownDeterminism, SymptomNone, Table1Want[2][3])
	return out
}

// Table1 classifies a corpus into the paper's cross-tabulation.
func Table1(corpus []*Record) [3][4]int {
	var got [3][4]int
	for _, r := range corpus {
		d, c := Classify(r)
		got[d][c]++
	}
	return got
}

// Figure1 tallies deterministic bugs per year by consequence (Crash, WARN,
// NoCrash, Unknown — the figure's legend order).
func Figure1(corpus []*Record) map[int][4]int {
	got := make(map[int][4]int)
	for _, r := range corpus {
		d, c := Classify(r)
		if d != Deterministic {
			continue
		}
		cell := got[r.Year]
		switch c {
		case Crash:
			cell[0]++
		case WARN:
			cell[1]++
		case NoCrash:
			cell[2]++
		default:
			cell[3]++
		}
		got[r.Year] = cell
	}
	return got
}

// DetectableDeterministic counts the paper's headline: deterministic bugs
// whose consequence (Crash or WARN) is detectable as a runtime error —
// "a significant portion cause crashes or warnings that are detected as
// runtime errors (89/165)".
func DetectableDeterministic(corpus []*Record) (detectable, deterministic int) {
	for _, r := range corpus {
		d, c := Classify(r)
		if d != Deterministic {
			continue
		}
		deterministic++
		if c == Crash || c == WARN {
			detectable++
		}
	}
	return detectable, deterministic
}

// ToSpecimen converts a bug record into an armable fault-injection specimen
// of the matching class, planted at the given operation seam.
func ToSpecimen(r *Record, op string) *faultinject.Specimen {
	d, c := Classify(r)
	s := &faultinject.Specimen{
		ID:            r.ID,
		Op:            op,
		Point:         "entry",
		Deterministic: d == Deterministic,
		Prob:          0.5,
	}
	if s.Deterministic {
		s.Prob = 1
	}
	switch c {
	case Crash:
		s.Class = faultinject.Crash
	case WARN:
		s.Class = faultinject.Warn
	case NoCrash:
		// Figure 1's NoCrash bucket spans corruption, freezes, perf; the
		// executable corpus maps it to silent corruption or freezes.
		if strings.Contains(r.Title, "freeze") || strings.Contains(r.Title, "deadlock") {
			s.Class = faultinject.Freeze
		} else {
			s.Class = faultinject.SilentCorrupt
		}
	default:
		s.Class = faultinject.ErrReturn
	}
	return s
}

// RenderTable1 formats the cross-tabulation in the paper's layout.
func RenderTable1(got [3][4]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %9s %7s %6s %8s %6s\n", "Determinism\\Conseq.", "No Crash", "Crash", "WARN", "Unknown", "Total")
	rows := []Determinism{Deterministic, NonDeterministic, UnknownDeterminism}
	colTotals := [5]int{}
	for ri, d := range rows {
		total := 0
		for ci := 0; ci < 4; ci++ {
			total += got[ri][ci]
			colTotals[ci] += got[ri][ci]
		}
		colTotals[4] += total
		fmt.Fprintf(&b, "%-20s %9d %7d %6d %8d %6d\n",
			d, got[ri][0], got[ri][1], got[ri][2], got[ri][3], total)
	}
	fmt.Fprintf(&b, "%-20s %9d %7d %6d %8d %6d\n", "Total",
		colTotals[0], colTotals[1], colTotals[2], colTotals[3], colTotals[4])
	return b.String()
}

// RenderFigure1 formats the yearly series as an ASCII stacked chart plus the
// raw numbers the figure plots.
func RenderFigure1(got map[int][4]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %6s %5s %8s %8s %6s  %s\n", "Year", "Crash", "WARN", "NoCrash", "Unknown", "Total", "")
	for _, y := range Years() {
		c := got[y]
		total := c[0] + c[1] + c[2] + c[3]
		bar := strings.Repeat("#", c[0]) + strings.Repeat("w", c[1]) +
			strings.Repeat(".", c[2]) + strings.Repeat("?", c[3])
		fmt.Fprintf(&b, "%-6d %6d %5d %8d %8d %6d  %s\n", y, c[0], c[1], c[2], c[3], total, bar)
	}
	b.WriteString("legend: # Crash, w WARN, . NoCrash, ? Unknown\n")
	return b.String()
}
