package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// TestRAEPreservesOrphanDescriptorAcrossRecovery: an open-unlinked file's
// descriptor (the classic orphan) survives recovery via the fd snapshot,
// the recorded unlink, and the hand-off.
func TestRAEPreservesOrphanDescriptorAcrossRecovery(t *testing.T) {
	reg := faultinject.NewRegistry(2)
	reg.Arm(trigger(faultinject.Crash, "mkdir", true))
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	fd, err := fs.Create("/ghost", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("orphan payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // stable point: fd open, file linked
		t.Fatal(err)
	}
	if err := fs.Unlink("/ghost"); err != nil { // recorded orphan-making op
		t.Fatal(err)
	}
	if err := fs.Mkdir("/trigger", 0o755); err != nil { // crash + recovery
		t.Fatal(err)
	}
	if fs.Stats().Recoveries != 1 {
		t.Fatal("no recovery")
	}
	got, err := fs.ReadAt(fd, 0, 100)
	if err != nil || string(got) != "orphan payload" {
		t.Fatalf("orphan read after recovery = (%q, %v)", got, err)
	}
	if _, err := fs.Stat("/ghost"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("unlinked name visible after recovery: %v", err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestWarnWithoutEscalationContinues: WARN records are observed but do not
// trigger recovery when the policy says so.
func TestWarnWithoutEscalationContinues(t *testing.T) {
	reg := faultinject.NewRegistry(3)
	reg.Arm(&faultinject.Specimen{
		ID: "warn-only", Class: faultinject.Warn,
		Deterministic: true, Op: "create", Point: "entry",
	})
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}, EscalateWarns: false})
	fd, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close(fd)
	st := fs.Stats()
	if st.Recoveries != 0 {
		t.Errorf("recovery despite EscalateWarns=false")
	}
	if st.WarnsSeen == 0 {
		t.Errorf("WARN not observed")
	}
}

// TestStopOnDiscrepancyDegrades: a poisoned log entry (outcome that cannot
// be reproduced) aborts the shadow under StopOnDiscrepancy and the
// supervisor degrades explicitly rather than absorbing questionable state.
func TestStopOnDiscrepancyDegrades(t *testing.T) {
	reg := faultinject.NewRegistry(4)
	// First: a silent-corruption specimen that corrupts the create's
	// recorded return... instead, inject the mismatch directly: a WARN
	// specimen that escalates AFTER an op whose outcome the supervisor
	// recorded from a lying base. Simplest deterministic construction: the
	// base lies about the allocated inode via a corrupting specimen at the
	// create seam that bumps no state but our recording trusts the base.
	// The cleanest controllable trigger is a crash later with a log whose
	// first entry was hand-poisoned; do that via the exported surfaces:
	// run a create, then crash, with the log intact — and poison the log by
	// unlinking the created file *behind the supervisor's back* through the
	// base, so constrained replay of the later ops diverges.
	reg.Arm(trigger(faultinject.Crash, "rmdir", true))
	fs, _, _ := newSupervised(t, Config{
		Base:              basefs.Options{Injector: reg},
		StopOnDiscrepancy: true,
	})
	fd, err := fs.Create("/a", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close(fd)
	// Behind the supervisor's back: remove /a directly on the base. The log
	// still says "create /a succeeded with ino 2"; replay will allocate ino
	// 2 for /a again (fine) — so instead create a *conflict*: make /b exist
	// only in the log's view.
	if err := fs.Base().Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	// Now a second create of /a through the supervisor: the base sees no
	// /a (we unlinked it), succeeds, records it. Replay from the on-disk
	// state will execute create(/a) twice successfully — the second must
	// fail with EEXIST in the shadow: a discrepancy.
	fd2, err := fs.Create("/a", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.Close(fd2)
	if err := fs.Mkdir("/trigger-dir", 0o755); err != nil {
		t.Fatal(err)
	}
	err = fs.Rmdir("/trigger-dir") // fires the crash
	// Recovery must have degraded: the log was unreplayable.
	st := fs.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("recoveries = %d", st.Recoveries)
	}
	if st.Degradations != 1 {
		t.Fatalf("no degradation despite poisoned log (err=%v, disc=%v)",
			err, fs.LastDiscrepancies())
	}
	if !errors.Is(err, fserr.ErrIO) {
		t.Errorf("degraded recovery returned %v to the app, want EIO", err)
	}
	// The system is still usable on the last durable state.
	if _, err := fs.Create("/fresh", 0o644); err != nil {
		t.Errorf("post-degradation create: %v", err)
	}
}

// TestRecoveryWithOnDiskCorruptionDegrades: if the on-disk image itself is
// corrupt at recovery time (outside the fault model's guarantee), the
// shadow's fsck refuses it and the supervisor degrades explicitly.
func TestRecoveryWithOnDiskCorruptionDegrades(t *testing.T) {
	reg := faultinject.NewRegistry(5)
	reg.Arm(trigger(faultinject.Crash, "mkdir", true))
	fs, dev, sbGeom := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	fd, _ := fs.Create("/data", 0o644)
	fs.WriteAt(fd, 0, []byte("x"))
	fs.Close(fd)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Force a checkpoint so the inode table is home and the journal is
	// empty — otherwise replay at recovery would simply rewrite the block
	// we are about to corrupt, repairing the "media corruption".
	if err := fs.Base().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Scribble on the on-disk inode table (simulating media corruption that
	// sync-validate could not have seen).
	blk, off := sbGeom.InodeLoc(2)
	if err := dev.CorruptBlock(blk, off+8, 0xFF); err != nil {
		t.Fatal(err)
	}
	err := fs.Mkdir("/trigger", 0o755)
	st := fs.Stats()
	if st.Recoveries != 1 || st.Degradations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !errors.Is(err, fserr.ErrIO) {
		t.Errorf("degraded op returned %v", err)
	}
}

// TestInFlightReadServedByShadow: a deterministic bug on the read path is
// masked; the data the application receives comes from the shadow.
func TestInFlightReadServedByShadow(t *testing.T) {
	reg := faultinject.NewRegistry(6)
	reg.Arm(&faultinject.Specimen{
		ID: "read-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "readat", Point: "entry", AfterN: 1,
	})
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	fd, _ := fs.Create("/r", 0o644)
	fs.WriteAt(fd, 0, []byte("served by the shadow"))
	got, err := fs.ReadAt(fd, 0, 100) // match 1: passes (AfterN=1)
	if err != nil || string(got) != "served by the shadow" {
		t.Fatalf("first read = (%q, %v)", got, err)
	}
	got, err = fs.ReadAt(fd, 0, 100) // match 2: fires
	if err != nil || string(got) != "served by the shadow" {
		t.Fatalf("recovered read = (%q, %v)", got, err)
	}
	if fs.Stats().Recoveries != 1 {
		t.Errorf("recoveries = %d", fs.Stats().Recoveries)
	}
}

// TestFsyncFaultDelegatedToRebootedBase exercises §3.3's rule: a failure
// inside fsync recovers the prefix via the shadow and re-runs the fsync on
// the rebooted base.
func TestFsyncFaultDelegatedToRebootedBase(t *testing.T) {
	reg := faultinject.NewRegistry(7)
	reg.Arm(&faultinject.Specimen{
		ID: "sync-crash", Class: faultinject.Crash,
		Deterministic: false, Prob: 1, MaxFires: 1, Op: "sync", Point: "entry",
	})
	fs, dev, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	fd, _ := fs.Create("/durable", 0o644)
	fs.WriteAt(fd, 0, []byte("must survive"))
	if err := fs.Fsync(fd); err != nil { // fires, recovers, re-syncs
		t.Fatalf("fsync: %v", err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 || st.AppFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StablePoints == 0 {
		t.Error("re-run fsync did not create a stable point")
	}
	// The data is genuinely durable: crash and remount raw.
	crash := dev.Snapshot()
	fs.Kill()
	base, err := basefs.Mount(crash, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Kill()
	fd2, err := base.Open("/durable")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := base.ReadAt(fd2, 0, 100)
	if string(got) != "must survive" {
		t.Errorf("durable content = %q", got)
	}
}

// TestRecoveryWireFormatRoundTrip: the recovery input crosses the boundary
// as bytes; a log with every op kind must survive the trip (guarded inside
// raeRecover, surfaced here via a recovery over a rich log).
func TestRecoveryWireFormatRoundTrip(t *testing.T) {
	reg := faultinject.NewRegistry(8)
	reg.Arm(trigger(faultinject.Crash, "setperm", true))
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	ops := []*oplog.Op{
		{Kind: oplog.KMkdir, Path: "/d", Perm: 0o755},
		{Kind: oplog.KCreate, Path: "/d/f", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("wire")},
		{Kind: oplog.KSymlink, Path: "/d/l", Path2: "/d/f"},
		{Kind: oplog.KLink, Path: "/d/f", Path2: "/d/h"},
		{Kind: oplog.KRename, Path: "/d/h", Path2: "/d/h2"},
		{Kind: oplog.KTruncate, Path: "/d/f", Size: 2},
		{Kind: oplog.KClose, FD: 0},
	}
	for _, op := range ops {
		if err := oplog.Apply(fs, op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	if err := fs.SetPerm("/d/trigger-x", 0o600); err == nil {
		t.Fatal("detonation succeeded?")
	}
	st := fs.Stats()
	if st.Recoveries != 1 || st.Degradations != 0 {
		t.Fatalf("stats = %+v; wire format mangled the log?", st)
	}
	// Full state intact after the round trip.
	if _, err := fs.Stat("/d/h2"); err != nil {
		t.Errorf("hard link lost: %v", err)
	}
	target, err := fs.Readlink("/d/l")
	if err != nil || target != "/d/f" {
		t.Errorf("symlink lost: (%q, %v)", target, err)
	}
	st2, err := fs.Stat("/d/f")
	if err != nil || st2.Size != 2 {
		t.Errorf("truncate lost: %+v %v", st2, err)
	}
}

// TestRecoveryWithManyLiveJournalTxs: with lazy checkpointing, the journal
// routinely holds several committed transactions that have never been
// written home. A runtime error arriving in that state forces the contained
// reboot to replay the whole multi-transaction chain before the shadow
// hand-off; every previously fsynced file must come through intact.
func TestRecoveryWithManyLiveJournalTxs(t *testing.T) {
	reg := faultinject.NewRegistry(9)
	reg.Arm(trigger(faultinject.Crash, "mkdir", true))
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	payloads := map[string]string{}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("/live%d", i)
		body := fmt.Sprintf("live tx payload %d", i)
		fd, err := fs.Create(name, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt(fd, 0, []byte(body)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Fsync(fd); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(fd); err != nil {
			t.Fatal(err)
		}
		payloads[name] = body
	}
	if live := fs.Base().JournalLiveTxs(); live < 4 {
		t.Fatalf("journal holds %d live txs, want >= 4 before the fault", live)
	}
	if err := fs.Mkdir("/trigger", 0o755); err != nil { // fires crash + recovery
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 || st.Degradations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for name, body := range payloads {
		fd, err := fs.Open(name)
		if err != nil {
			t.Fatalf("%s lost across multi-tx replay: %v", name, err)
		}
		got, err := fs.ReadAt(fd, 0, 100)
		if err != nil || string(got) != body {
			t.Fatalf("%s = (%q, %v), want %q", name, got, err, body)
		}
		fs.Close(fd)
	}
}
