package core

import "sync"

// touchedShards stripes the touched-block set so concurrent writers on
// different blocks rarely share a lock; a power of two so the index is a
// mask.
const touchedShards = 16

// touchedSet records which device blocks have been written since the last
// fully-verified baseline. Every base-instance write funnels through the
// supervisor's fence, which records here; a recovery's region-scoped fsck
// then needs to examine only these blocks (plus the journal overlay's
// targets) instead of the whole image.
//
// The soundness argument is an invariant, not a race-free protocol:
// verified-baseline + touched-superset. Writes are only ever ADDED between
// baselines; the set is reset solely inside planRecovery, which runs with
// the recovery gate held exclusively, so no write can slip between the
// reset and the check that consumes the snapshot. A scrub pass never
// resets the set — its clean verdict refreshes the baseline flag only,
// which is safe because the set it leaves behind is a superset of the
// writes since its frozen view.
type touchedSet struct {
	shards [touchedShards]struct {
		mu sync.Mutex
		m  map[uint32]struct{}
	}
}

func newTouchedSet() *touchedSet {
	t := &touchedSet{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint32]struct{})
	}
	return t
}

// record marks blk written. Called from the fence on every device write.
func (t *touchedSet) record(blk uint32) {
	s := &t.shards[blk&(touchedShards-1)]
	s.mu.Lock()
	s.m[blk] = struct{}{}
	s.mu.Unlock()
}

// snapshotAndReset drains the set, returning everything recorded so far.
// Only safe while the device is quiescent (recovery gate held exclusively).
func (t *touchedSet) snapshotAndReset() map[uint32]struct{} {
	out := make(map[uint32]struct{})
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for blk := range s.m {
			out[blk] = struct{}{}
		}
		s.m = make(map[uint32]struct{})
		s.mu.Unlock()
	}
	return out
}

// merge adds blocks back, undoing a snapshotAndReset whose recovery failed
// to verify them (the blocks stay suspect for the next attempt).
func (t *touchedSet) merge(m map[uint32]struct{}) {
	for blk := range m {
		t.record(blk)
	}
}

// size returns the current block count (stats only).
func (t *touchedSet) size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
