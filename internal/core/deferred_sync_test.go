package core

// Regression tests for the deferred-sync detection envelope, added after the
// torture campaign's write-error class caught the §3.3 re-run path leaking a
// device fault to the application as a bare errno with Degradations == 0:
// withInjectionDisabled gates only the bug registry, so a device-level write
// error during the post-hand-off fsync escaped the supervisor entirely.

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/mkfs"
)

// journalWriteFailer wraps a Mem device and, while armed, fails every write
// to the journal's payload blocks (everything in the journal region past the
// JSB). Sync is the only path that writes those blocks, so arming it faults
// exactly the deferred sync re-run without disturbing recovery's reboot or
// the superblock updates. failures bounds how many writes fail before the
// device heals; a huge count means fail for the whole test.
type journalWriteFailer struct {
	*blockdev.Mem
	sb       *disklayout.Superblock
	armed    atomic.Bool
	failures atomic.Int64
}

func (d *journalWriteFailer) WriteBlock(blk uint32, data []byte) error {
	if d.armed.Load() && blk > d.sb.JournalStart && blk < d.sb.JournalStart+d.sb.JournalLen {
		if n := d.failures.Add(-1); n >= 0 {
			return fserr.ErrIO
		}
	}
	return d.Mem.WriteBlock(blk, data)
}

// newDeferredSyncHarness mounts a supervised FS on a journalWriteFailer with
// a one-shot crash specimen armed on the sync seam, and some un-synced state
// so the deferred re-run has a transaction to commit.
func newDeferredSyncHarness(t *testing.T) (*FS, *journalWriteFailer) {
	t.Helper()
	mem := blockdev.NewMem(4096)
	sb, err := mkfs.Format(mem, mkfs.Options{NumInodes: 256, JournalBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	dev := &journalWriteFailer{Mem: mem, sb: sb}
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "sync-boom", Class: faultinject.Crash, Deterministic: true,
		Prob: 1.0, Op: "sync", MaxFires: 1,
	})
	fs, err := Mount(dev, Config{Base: basefs.Options{Injector: reg}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Kill)
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := fs.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return fs, dev
}

// TestDeferredSyncRetriesMaskTransientFault: a transient device fault during
// the deferred re-run is absorbed by the bounded retry — the application
// sees a clean sync, no degradation, and the retry is counted.
func TestDeferredSyncRetriesMaskTransientFault(t *testing.T) {
	fs, dev := newDeferredSyncHarness(t)
	dev.failures.Store(1) // first payload write fails, then the device heals
	dev.armed.Store(true)
	err := fs.Sync() // specimen fires at the seam; re-run hits the device fault
	dev.armed.Store(false)
	if err != nil {
		t.Fatalf("Sync() = %v, want nil (transient fault must be retried away)", err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recoveries)
	}
	if st.SyncRetries == 0 {
		t.Error("transient fault was never retried (SyncRetries = 0)")
	}
	if st.Degradations != 0 {
		t.Errorf("degradations = %d, want 0", st.Degradations)
	}
	if st.AppFailures != 0 {
		t.Errorf("app failures = %d, want 0", st.AppFailures)
	}
	if _, err := fs.Stat("/a"); err != nil {
		t.Errorf("Stat(/a) after recovered sync: %v", err)
	}
}

// TestDeferredSyncPersistentFaultDegrades: when the device keeps refusing
// the re-run past the retry budget, the errno may surface — but only inside
// the detection envelope: the supervisor must record a degradation, never
// hand the application a fault while claiming full supervision. This is the
// exact leak the torture campaign caught.
func TestDeferredSyncPersistentFaultDegrades(t *testing.T) {
	fs, dev := newDeferredSyncHarness(t)
	dev.failures.Store(1 << 40) // fail for the whole test
	dev.armed.Store(true)
	err := fs.Sync()
	dev.armed.Store(false)
	dev.failures.Store(0)
	if err == nil {
		t.Fatal("Sync() = nil with a persistently faulting journal")
	}
	if !errors.Is(err, fserr.ErrIO) {
		t.Errorf("Sync() = %v, want ErrIO", err)
	}
	st := fs.Stats()
	if st.Degradations == 0 {
		t.Error("fault surfaced to the application with Degradations = 0 (the PR 7 leak)")
	}
	if st.SyncRetries != deferredSyncRetries {
		t.Errorf("sync retries = %d, want %d", st.SyncRetries, deferredSyncRetries)
	}
	// The supervisor must stay alive: once the device heals, syncs work.
	if err := fs.Sync(); err != nil {
		t.Errorf("Sync() after device healed: %v", err)
	}
}
