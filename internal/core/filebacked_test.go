package core

import (
	"path/filepath"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/faultinject"
	"repro/internal/fsck"
	"repro/internal/mkfs"
)

// TestEndToEndOnFileBackedDevice runs the full RAE stack — mkfs, supervised
// mount, bug firing, recovery, unmount, reopen, fsck — over a real file on
// the host filesystem, the same substrate cmd/mkfs and cmd/fsck use.
func TestEndToEndOnFileBackedDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	dev, err := blockdev.OpenFile(path, 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 256, JournalBlocks: 32}); err != nil {
		t.Fatal(err)
	}
	reg := faultinject.NewRegistry(41)
	reg.Arm(&faultinject.Specimen{
		ID: "file-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "unlink", Point: "entry", PathSubstr: "trigger",
	})
	fs, err := Mount(dev, Config{Base: basefs.Options{Injector: reg}})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := fs.Create("/trigger-file", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("on a real file")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/trigger-file"); err != nil { // fires, recovers
		t.Fatal(err)
	}
	if fs.Stats().Recoveries != 1 {
		t.Fatal("no recovery on file-backed device")
	}
	fd2, err := fs.Create("/survivor", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteAt(fd2, 0, []byte("durable"))
	fs.Close(fd2)
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the image file cold, as cmd/fsck would.
	dev2, err := blockdev.OpenFile(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	if rep := fsck.Check(dev2); !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("%s", p)
		}
	}
	base, err := basefs.Mount(dev2, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Kill()
	fd3, err := base.Open("/survivor")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := base.ReadAt(fd3, 0, 100)
	if string(got) != "durable" {
		t.Errorf("content = %q", got)
	}
}
