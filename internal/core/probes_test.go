package core

import (
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
)

// TestProbeRecoveryPaths: bugs firing inside read-only operations (stat,
// readdir, readlink) are masked too — the probe is re-served after recovery
// with injection gated for the retry.
func TestProbeRecoveryPaths(t *testing.T) {
	reg := faultinject.NewRegistry(51)
	reg.Arm(&faultinject.Specimen{
		ID: "stat-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "readdir", Point: "entry", PathSubstr: "probe",
	})
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	if err := fs.Mkdir("/probe-dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/target", "/probe-dir/ln"); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.Readdir("/probe-dir") // fires, recovers, re-serves
	if err != nil || len(ents) != 1 || ents[0].Name != "ln" {
		t.Fatalf("readdir after recovery = (%v, %v)", ents, err)
	}
	if fs.Stats().Recoveries != 1 {
		t.Fatalf("recoveries = %d", fs.Stats().Recoveries)
	}
	// Readlink and Stat still work; the deterministic bug keeps firing on
	// readdir and keeps being masked.
	target, err := fs.Readlink("/probe-dir/ln")
	if err != nil || target != "/target" {
		t.Errorf("readlink = (%q, %v)", target, err)
	}
	st, err := fs.Stat("/probe-dir")
	if err != nil || st.Nlink != 2 {
		t.Errorf("stat = (%+v, %v)", st, err)
	}
	if _, err := fs.Readdir("/probe-dir"); err != nil {
		t.Errorf("second readdir: %v", err)
	}
	if got := fs.Stats().Recoveries; got != 2 {
		t.Errorf("recoveries = %d, want 2 (deterministic readdir bug re-fires)", got)
	}
	if fs.Stats().AppFailures != 0 {
		t.Errorf("app failures: %+v", fs.Stats())
	}
}

func TestAccessorsAndModeNames(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	if fs.Injector() != reg {
		t.Error("Injector accessor broken")
	}
	if len(fs.LastDiscrepancies()) != 0 {
		t.Error("fresh supervisor has discrepancies")
	}
	for _, m := range []Mode{ModeRAE, ModeCrashRestart, ModeNaiveReplay, Mode(99)} {
		if m.String() == "" {
			t.Errorf("empty name for mode %d", int(m))
		}
	}
}
