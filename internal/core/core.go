// Package core implements Robust Alternative Execution (RAE), the paper's
// primary contribution: a supervisor that runs a performance-oriented base
// filesystem in the common case and, when a runtime error is detected,
// masks it by a contained reboot plus re-execution on the shadow filesystem.
//
// The supervisor wraps the base behind the shared fsapi.FS interface and:
//
//  1. records every state-changing operation and its outcome in the
//     operation log, truncating at durable points (§3.2);
//  2. detects runtime errors: panics in base code (contained with recover),
//     kernel-style WARNs (escalation configurable), internal corruption
//     (ErrCorrupt/ErrIO results, including pre-persist sync validation
//     failures), and freezes (per-operation watchdog);
//  3. performs the contained reboot: the faulty base instance is discarded
//     wholesale — caches, fd table, dirty state — and a fresh instance is
//     mounted from trusted on-disk state via journal replay;
//  4. launches the shadow over the same device (read-only, fsck-verified),
//     replays the recorded sequence in constrained mode and the in-flight
//     operation in autonomous mode;
//  5. hands the shadow's sealed metadata update to the rebooted base
//     (metadata download) and returns the in-flight operation's result to
//     the application, which never observes the failure.
//
// Supervision is concurrency-transparent: in the common case operations
// enter through the read side of a striped recovery gate and run fully in
// parallel (the base's own RWMutex + per-inode locking provides the real
// serialization); only a detected fault closes the gate, drains in-flight
// operations, and runs recovery exclusively. Operations that blocked at the
// closed gate retry against the recovered base, so applications never
// observe the failure even mid-burst.
//
// The package also hosts the baselines the experiments compare against:
// crash-restart (fail everything back to the application), naive replay
// (Membrane-style re-execution on the base itself, which re-triggers
// deterministic bugs), and 3-version voting (NVP).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/oplog"
	"repro/internal/scrub"
	"repro/internal/shadowfs"
	"repro/internal/telemetry"
)

// Mode selects the failure-handling strategy.
type Mode int

// Modes.
const (
	// ModeRAE is the paper's system: contained reboot + shadow re-execution.
	ModeRAE Mode = iota
	// ModeCrashRestart remounts from disk and fails the in-flight operation
	// and all open descriptors back to the application (the status quo the
	// paper argues against).
	ModeCrashRestart
	// ModeNaiveReplay remounts and re-executes the recorded sequence on the
	// base itself (Membrane-style); deterministic bugs re-trigger (§2.2's
	// fundamental conflict).
	ModeNaiveReplay
)

// String names the mode in experiment tables.
func (m Mode) String() string {
	switch m {
	case ModeRAE:
		return "rae"
	case ModeCrashRestart:
		return "crash-restart"
	case ModeNaiveReplay:
		return "naive-replay"
	}
	return "unknown"
}

// Config tunes the supervisor.
type Config struct {
	// Base configures the base filesystem instances (cache sizes, the bug
	// injector, extra checks).
	Base basefs.Options
	// Mode selects RAE or a baseline strategy.
	Mode Mode
	// EscalateWarns treats WARN records as detected errors that trigger
	// recovery (Table 1 counts WARNs among detectable consequences). When
	// false WARNs are logged and execution continues.
	EscalateWarns bool
	// Watchdog bounds each operation's execution; 0 disables freeze
	// detection.
	Watchdog time.Duration
	// StopOnDiscrepancy aborts recovery when the shadow's constrained replay
	// disagrees with a recorded outcome, degrading to crash-restart.
	StopOnDiscrepancy bool
	// MaxReplayRetries bounds naive replay's re-execution attempts before it
	// degrades to crash-restart.
	MaxReplayRetries int
	// SkipFsckInRecovery skips the shadow's image check during recovery (for
	// phase-isolating benchmarks only).
	SkipFsckInRecovery bool
	// SequentialRecovery disables the pipelined recovery engine: contained
	// reboot, shadow replay, and hand-off run strictly one after another as
	// separate stages. The default engine overlaps the reboot with the
	// shadow's replay (they work from independent read-only views of the
	// post-replay device state) and streams the hand-off in chunks, so
	// recovery latency approaches max(reboot, replay) + install instead of
	// their sum. This knob exists for the E12 comparison and for isolating
	// stage costs.
	SequentialRecovery bool
	// RecoveryPrefetchWorkers sizes the background crew that streams the
	// frozen recovery view into a read cache during a pipelined recovery, so
	// the overlapped fsck and replay stages pay the device's per-IO service
	// time at crew parallelism instead of serially. 0 selects the default
	// (8); negative disables prefetching. Ignored in SequentialRecovery
	// mode, which by definition runs no background work.
	RecoveryPrefetchWorkers int
	// FsckWorkers sizes the parallel checker's worker pool for recovery-time
	// and scrub-time image verification. 0 selects the default (8); 1 keeps
	// the scan single-threaded (still one read per table block, where the
	// sequential baseline pays one per inode). SequentialRecovery mode
	// ignores it and runs the plain sequential checker.
	FsckWorkers int
	// DisableScopedFsck forces every recovery to verify the full image even
	// when a verified baseline plus the touched-block set would allow a
	// region-scoped check. For comparisons and belt-and-suspenders setups.
	DisableScopedFsck bool
	// ScrubInterval enables the online background scrubber: every interval,
	// the parallel checker runs over a frozen snapshot-plus-committed-journal
	// view, publishing scrub.* telemetry; a corrupt finding trips the
	// recovery fence proactively and a clean pass refreshes the scoped-fsck
	// baseline. Requires the device to implement blockdev.Snapshotter.
	// 0 (the default) disables scrubbing.
	ScrubInterval time.Duration
	// ScrubWorkers sizes the scrubber's checker pool; 0 inherits FsckWorkers.
	ScrubWorkers int
	// ExternalScrub creates the scrubber without starting its internal timer:
	// an external scheduler (the volume manager's shared scrub worker pool)
	// drives passes through Scrubber().RunOnce() instead, so N volumes share
	// one checking budget rather than each running a private ticker. Requires
	// a device implementing blockdev.Snapshotter, like ScrubInterval.
	ExternalScrub bool
	// Telemetry selects the observability sink. Nil uses the process-global
	// telemetry.Default() sink: a supervised filesystem is always observable
	// unless NoTelemetry opts out.
	Telemetry *telemetry.Sink
	// NoTelemetry disables observability entirely; every instrument becomes a
	// nil no-op costing one pointer check. Used by overhead-isolating
	// benchmarks.
	NoTelemetry bool
}

func (c *Config) fill() {
	if c.MaxReplayRetries == 0 {
		c.MaxReplayRetries = 3
	}
	if c.RecoveryPrefetchWorkers == 0 {
		c.RecoveryPrefetchWorkers = 8
	}
	if c.FsckWorkers <= 0 {
		c.FsckWorkers = 8
	}
	if c.ScrubWorkers <= 0 {
		c.ScrubWorkers = c.FsckWorkers
	}
	if c.NoTelemetry {
		c.Telemetry = nil
	} else if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
	c.Base.Telemetry = c.Telemetry
}

// RecoveryPhases breaks one recovery's latency into the paper's steps. In
// the pipelined engine Reboot overlaps Fsck+Replay and Absorb includes time
// spent blocked on the replay stage's chunk stream, so the per-stage fields
// are busy times, not a wall-clock partition; Wall is the measured
// end-to-end latency.
type RecoveryPhases struct {
	Reboot time.Duration // kill + journal replay + fresh mount
	Fsck   time.Duration // shadow's image validation
	Replay time.Duration // shadow constrained + autonomous execution
	Absorb time.Duration // metadata download into the base
	// Wall is the measured end-to-end recovery latency. With the pipelined
	// engine Wall < Reboot+Fsck+Replay+Absorb by the overlap won; in
	// sequential mode it is (approximately) their sum.
	Wall time.Duration
}

// Total returns the end-to-end recovery latency: the measured wall clock
// when available, the stage sum otherwise (older callers and zero values).
func (p RecoveryPhases) Total() time.Duration {
	if p.Wall > 0 {
		return p.Wall
	}
	return p.Reboot + p.Fsck + p.Replay + p.Absorb
}

// Stats aggregates supervisor activity for the experiments.
type Stats struct {
	OpsExecuted    int64
	OpsRecorded    int64
	StablePoints   int64
	Recoveries     int64
	Degradations   int64 // recoveries that fell back to crash-restart
	PanicsCaught   int64
	WarnsSeen      int64
	WarnsEscalated int64
	Freezes        int64
	FaultResults   int64 // ErrCorrupt/ErrIO outcomes intercepted
	FDsInvalidated int64 // descriptors lost to crash-restart semantics
	AppFailures    int64 // operations that surfaced a failure to the app
	SyncRetries    int64 // deferred sync re-runs retried past a device fault
	OpsReplayed    int64
	OpsReused      int64 // ops a warm resume did not have to re-replay
	Discrepancies  int64
	FsckFull       int64 // recovery checks that verified the whole image
	FsckScoped     int64 // recovery checks scoped to the fault's blast radius
	ScrubPasses    int64 // background scrub passes completed
	ScrubCorrupt   int64 // scrub passes that found corruption
	TouchedBlocks  int   // blocks written since the last verified baseline
	TotalDowntime  time.Duration
	Phases         []RecoveryPhases
	PeakLogLen     int
}

// counters holds the supervisor's live tallies. Every field is an atomic so
// concurrent operations never contend on a stats lock.
type counters struct {
	opsExecuted    atomic.Int64
	opsRecorded    atomic.Int64
	stablePoints   atomic.Int64
	recoveries     atomic.Int64
	degradations   atomic.Int64
	panicsCaught   atomic.Int64
	warnsEscalated atomic.Int64
	freezes        atomic.Int64
	faultResults   atomic.Int64
	fdsInvalidated atomic.Int64
	appFailures    atomic.Int64
	syncRetries    atomic.Int64
	opsReplayed    atomic.Int64
	opsReused      atomic.Int64
	discrepancies  atomic.Int64
	fsckFull       atomic.Int64
	fsckScoped     atomic.Int64
	downtimeNs     atomic.Int64
}

// fdStripes is the stripe count of the per-descriptor record locks; a power
// of two so the index is a mask.
const fdStripes = 32

// roundStable is one sync round's stable-point capture: everything the log
// needs to truncate consistently once the round's image is durable. All
// three fields are read at the same instant under ns, so together they
// describe the filesystem state exactly as of watermark wm.
type roundStable struct {
	base  *basefs.FS
	wm    uint64
	fds   map[fsapi.FD]uint32
	clock uint64
}

// FS is the RAE-supervised filesystem. It implements fsapi.FS; applications
// use it exactly like the base, from any number of goroutines.
type FS struct {
	dev blockdev.Device
	// gate is the recovery fence: read-side entry in the common case,
	// exclusive closure for recovery.
	gate *gate
	// gen counts recoveries. An operation samples it at gate entry; a
	// faulting operation that finds it changed by the time it holds the gate
	// exclusively knows another goroutine already recovered, and retries
	// against the new base instead of recovering again.
	gen atomic.Uint64
	// base is the current base instance; replaced only while the gate is
	// held exclusively.
	base atomic.Pointer[basefs.FS]
	// fence is the current base instance's device handle; raised at the
	// start of every contained reboot so abandoned operations cannot touch
	// the device the recovery works from.
	fence atomic.Pointer[fencedDevice]
	log   *oplog.Log
	cfg   Config
	cnt   counters
	warns warnCounter
	// warnsHandled is the warn count already consumed by recoveries; the
	// pre-persist barrier vetoes a sync while warns.n is ahead of it.
	warnsHandled atomic.Int64

	// ns serializes execute+append for namespace-mutating operations, so the
	// recorded sequence order is a valid serialization of what the base
	// executed (the base serializes these under its own namespace lock
	// anyway, so this adds no contention the base didn't have). Each sync
	// round holds it only across its watermark read + dirty snapshot (the
	// PreSnapshot/PostSnapshot hooks), which pins the stable point's place
	// in the total order without blocking namespace operations for the
	// round's IO phases.
	ns sync.Mutex
	// roundStable describes the stable point of the sync round currently in
	// its snapshot-to-durable window — watermark, descriptor table, and
	// logical clock, all captured together under ns by the PreSnapshot hook
	// and consumed by OnSyncDurable. Rounds on the live base are serialized
	// by the base's leader protocol, so one slot suffices; the base pointer
	// lets the consumer reject a capture made by a round on an abandoned
	// instance.
	roundStable atomic.Pointer[roundStable]
	// fdmu stripes execute+append for per-descriptor mutations (writes,
	// close), keyed by descriptor number: conflicting ops on one descriptor
	// record in execution order, independent descriptors never contend.
	fdmu [fdStripes]sync.Mutex

	// devGen counts device writes across every base instance (bumped inside
	// the fence). The warm replayer retained after a recovery is valid for a
	// later fault only while this generation has not moved: any write since
	// retention — commit, checkpoint, eviction — changes bytes under the
	// retained overlay.
	devGen atomic.Uint64
	// touched records every block written through any fence since the last
	// time a recovery consumed (and reset) the set; see touched.go.
	touched *touchedSet
	// verified says the on-disk image passed a full check (a cold recovery's
	// fsck or a clean scrub pass) and every write since is in touched — the
	// precondition for a region-scoped recovery check. Cleared whenever a
	// recovery degrades or corruption is found; set only while recoveries
	// are excluded (exclusive gate, or read gate + generation check).
	verified atomic.Bool
	// scrub is the online background scrubber, nil unless ScrubInterval or
	// ExternalScrub is set.
	scrub *scrub.Scrubber
	// recovering is set for the duration of recoverFrom: the fleet layer
	// polls it to count how many volumes are inside a recovery right now.
	recovering atomic.Bool
	// cacheBudget, when nonzero, overrides Base.CacheBlocks for every base
	// instance this supervisor mounts (including contained reboots), so a
	// rebalanced quota survives recovery. Written by SetCacheBudget.
	cacheBudget atomic.Int64
	// scrubTripped marks an open corruption episode: the scrubber tripped a
	// recovery for it and won't trip again until a clean pass (or a clean
	// recovery check) re-arms it.
	scrubTripped atomic.Bool
	// extFault marks the in-progress recovery as externally triggered (a
	// scrub trip, not an application operation). Written and read only with
	// the gate held exclusively.
	extFault bool
	// warm is the replay engine retained by the last successful RAE
	// recovery, nil if none. Touched only while the gate is held
	// exclusively.
	warm *shadowfs.Replayer

	// tel is the observability sink (nil when Config.NoTelemetry); set once
	// at Mount and read-only afterwards.
	tel *telemetry.Sink

	// postMu guards the post-mortem state below (appended during exclusive
	// recovery, read by accessors at any time).
	postMu sync.Mutex
	phases []RecoveryPhases
	// lastDisc keeps the most recent recovery's discrepancy reports for
	// post-mortem inspection (§4.3: "reporting the discrepancies is
	// necessary").
	lastDisc []difftest.Discrepancy
}

var _ fsapi.FS = (*FS)(nil)

// Mount brings up a supervised filesystem over a formatted device.
func Mount(dev blockdev.Device, cfg Config) (*FS, error) {
	cfg.fill()
	fs := &FS{dev: dev, log: oplog.NewLog(), cfg: cfg, tel: cfg.Telemetry}
	fs.gate = newGate(fs.tel)
	fs.warns.next = cfg.Base.OnWarn
	fs.log.SetTelemetry(fs.tel)
	fs.touched = newTouchedSet()
	var snap blockdev.Snapshotter
	if cfg.ScrubInterval > 0 || cfg.ExternalScrub {
		var ok bool
		if snap, ok = dev.(blockdev.Snapshotter); !ok {
			return nil, fmt.Errorf("core: scrubbing requires a device implementing blockdev.Snapshotter: %w", fserr.ErrInvalid)
		}
	}
	base, fence, err := fs.mountBase()
	if err != nil {
		return nil, err
	}
	fs.base.Store(base)
	fs.fence.Store(fence)
	fs.log.Stable(base.OpenFDs(), base.Clock())
	if snap != nil {
		fs.startScrubber(snap)
	}
	return fs, nil
}

// Telemetry returns the supervisor's observability sink (nil when mounted
// with NoTelemetry). Recovery traces, the event journal, and all layer
// metrics are queryable from it.
func (r *FS) Telemetry() *telemetry.Sink { return r.tel }

// Unmount syncs and stops the supervised filesystem. The scrubber is
// stopped first — a pass may be inside a recovery it tripped, which needs
// the gate this drain is about to close — then in-flight operations drain
// through the gate.
func (r *FS) Unmount() error {
	r.scrub.Stop()
	r.gate.close()
	defer r.gate.open()
	return r.base.Load().Unmount()
}

// Kill abandons the supervised filesystem without syncing (tests).
func (r *FS) Kill() {
	r.scrub.Stop()
	r.gate.close()
	defer r.gate.open()
	r.base.Load().Kill()
}

// Stats returns a copy of the supervisor's counters.
func (r *FS) Stats() Stats {
	s := Stats{
		OpsExecuted:    r.cnt.opsExecuted.Load(),
		OpsRecorded:    r.cnt.opsRecorded.Load(),
		StablePoints:   r.cnt.stablePoints.Load(),
		Recoveries:     r.cnt.recoveries.Load(),
		Degradations:   r.cnt.degradations.Load(),
		PanicsCaught:   r.cnt.panicsCaught.Load(),
		WarnsSeen:      r.warns.n.Load(),
		WarnsEscalated: r.cnt.warnsEscalated.Load(),
		Freezes:        r.cnt.freezes.Load(),
		FaultResults:   r.cnt.faultResults.Load(),
		FDsInvalidated: r.cnt.fdsInvalidated.Load(),
		AppFailures:    r.cnt.appFailures.Load(),
		SyncRetries:    r.cnt.syncRetries.Load(),
		OpsReplayed:    r.cnt.opsReplayed.Load(),
		OpsReused:      r.cnt.opsReused.Load(),
		Discrepancies:  r.cnt.discrepancies.Load(),
		FsckFull:       r.cnt.fsckFull.Load(),
		FsckScoped:     r.cnt.fsckScoped.Load(),
		ScrubPasses:    r.scrub.Passes(),
		ScrubCorrupt:   r.scrub.CorruptPasses(),
		TouchedBlocks:  r.touched.size(),
		TotalDowntime:  time.Duration(r.cnt.downtimeNs.Load()),
		PeakLogLen:     r.log.PeakLen(),
	}
	r.postMu.Lock()
	s.Phases = append([]RecoveryPhases(nil), r.phases...)
	r.postMu.Unlock()
	return s
}

// LastDiscrepancies returns the constrained-replay disagreements from the
// most recent recovery.
func (r *FS) LastDiscrepancies() []difftest.Discrepancy {
	r.postMu.Lock()
	defer r.postMu.Unlock()
	return append([]difftest.Discrepancy(nil), r.lastDisc...)
}

// Base exposes the current base instance for experiment instrumentation
// (cache hit rates). The instance changes across recoveries.
func (r *FS) Base() *basefs.FS { return r.base.Load() }

// LogLen returns the current recorded-operation count (recovery cost driver).
func (r *FS) LogLen() int { return r.log.Len() }

// DumpLog serializes the current recovery input — the recorded sequence,
// the stable-point descriptor table, and the clock — in the wire format a
// shadow process consumes. cmd/shadowreplay replays such dumps offline as
// the §4.3 post-error testing tool.
func (r *FS) DumpLog() []byte {
	ops, fds, clk := r.log.Snapshot()
	return oplog.EncodeSequence(ops, fds, clk)
}

// Injector returns the registry shared with the base, if any.
func (r *FS) Injector() *faultinject.Registry { return r.cfg.Base.Injector }

// Scrubber exposes the background scrubber (nil unless ScrubInterval or
// ExternalScrub is set), so tests, tools, and the volume manager's shared
// scrub scheduler can drive RunOnce or read pass counters directly.
func (r *FS) Scrubber() *scrub.Scrubber { return r.scrub }

// Recovering reports whether a recovery is executing right now. The fleet
// telemetry rollup samples it across volumes for the volmgr.recovering gauge.
func (r *FS) Recovering() bool { return r.recovering.Load() }

// SetCacheBudget adjusts the current base instance's buffer-cache
// clean-buffer bound and records the value so every future base instance
// (contained reboots replace the instance wholesale) mounts with the same
// bound. This is the supervisor-level handle the multi-volume cache
// rebalancer drives.
func (r *FS) SetCacheBudget(blocks int) {
	r.cacheBudget.Store(int64(blocks))
	r.base.Load().SetCacheBudget(blocks)
}

// CacheBudget returns the current base instance's clean-buffer bound.
func (r *FS) CacheBudget() int { return r.base.Load().CacheBudget() }

// lockRecord acquires the record lock(s) covering op, returning the unlock.
// Holding the lock across execute+append keeps the recorded order a valid
// serialization for conflicting operations; independent operations take
// disjoint locks and proceed in parallel.
func (r *FS) lockRecord(op *oplog.Op) func() {
	switch op.Kind {
	case oplog.KWrite:
		mu := &r.fdmu[uint32(op.FD)&(fdStripes-1)]
		mu.Lock()
		return mu.Unlock
	case oplog.KClose:
		// Close mutates both the namespace (fd table, possible deferred
		// unlink) and the descriptor: take both, ns first (lock order shared
		// with the sync leader).
		r.ns.Lock()
		mu := &r.fdmu[uint32(op.FD)&(fdStripes-1)]
		mu.Lock()
		return func() {
			mu.Unlock()
			r.ns.Unlock()
		}
	default:
		r.ns.Lock()
		return r.ns.Unlock
	}
}

// --- fsapi.FS facade ---

// Mkdir implements fsapi.FS.
func (r *FS) Mkdir(path string, perm uint16) error {
	op := &oplog.Op{Kind: oplog.KMkdir, Path: path, Perm: perm}
	r.do(op)
	return op.Err()
}

// Rmdir implements fsapi.FS.
func (r *FS) Rmdir(path string) error {
	op := &oplog.Op{Kind: oplog.KRmdir, Path: path}
	r.do(op)
	return op.Err()
}

// Create implements fsapi.FS.
func (r *FS) Create(path string, perm uint16) (fsapi.FD, error) {
	op := &oplog.Op{Kind: oplog.KCreate, Path: path, Perm: perm}
	r.do(op)
	return op.RetFD, op.Err()
}

// Open implements fsapi.FS.
func (r *FS) Open(path string) (fsapi.FD, error) {
	op := &oplog.Op{Kind: oplog.KOpen, Path: path}
	r.do(op)
	return op.RetFD, op.Err()
}

// Close implements fsapi.FS.
func (r *FS) Close(fd fsapi.FD) error {
	op := &oplog.Op{Kind: oplog.KClose, FD: fd}
	r.do(op)
	return op.Err()
}

// ReadAt implements fsapi.FS. Reads are not recorded, but they enter the
// gate and run under the same detection envelope: a read that trips a bug
// triggers recovery and is satisfied by the shadow.
func (r *FS) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	op := &oplog.Op{Kind: oplog.KReadProbe, FD: fd, Off: off, Size: int64(n)}
	var data []byte
	var rerr error
	recovered := r.runProbe(op, func(base *basefs.FS) *fault {
		return r.capture(func() error {
			var err error
			data, err = base.ReadAt(fd, off, n)
			rerr = err
			return err
		})
	})
	if !recovered {
		return data, rerr
	}
	if op.Errno != 0 {
		return nil, op.Err()
	}
	// The shadow executed the in-flight read during recovery; its bytes are
	// the authoritative result.
	return op.RetData, nil
}

// WriteAt implements fsapi.FS. The payload is copied at the facade boundary:
// the op can outlive this call (as the in-flight op of a recovery, replayed
// by the shadow after the caller resumed), so it must never alias a buffer
// the caller may reuse.
func (r *FS) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	buf := make([]byte, len(data))
	copy(buf, data)
	op := &oplog.Op{Kind: oplog.KWrite, FD: fd, Off: off, Data: buf}
	r.do(op)
	return op.RetN, op.Err()
}

// Truncate implements fsapi.FS.
func (r *FS) Truncate(path string, size int64) error {
	op := &oplog.Op{Kind: oplog.KTruncate, Path: path, Size: size}
	r.do(op)
	return op.Err()
}

// Unlink implements fsapi.FS.
func (r *FS) Unlink(path string) error {
	op := &oplog.Op{Kind: oplog.KUnlink, Path: path}
	r.do(op)
	return op.Err()
}

// Rename implements fsapi.FS.
func (r *FS) Rename(oldPath, newPath string) error {
	op := &oplog.Op{Kind: oplog.KRename, Path: oldPath, Path2: newPath}
	r.do(op)
	return op.Err()
}

// Link implements fsapi.FS.
func (r *FS) Link(oldPath, newPath string) error {
	op := &oplog.Op{Kind: oplog.KLink, Path: oldPath, Path2: newPath}
	r.do(op)
	return op.Err()
}

// Symlink implements fsapi.FS.
func (r *FS) Symlink(target, linkPath string) error {
	op := &oplog.Op{Kind: oplog.KSymlink, Path: linkPath, Path2: target}
	r.do(op)
	return op.Err()
}

// Readlink implements fsapi.FS.
func (r *FS) Readlink(path string) (string, error) {
	op := &oplog.Op{Kind: oplog.KStatProbe, Path: path}
	var target string
	var ferr error
	recovered := r.runProbe(op, func(base *basefs.FS) *fault {
		return r.capture(func() error {
			var err error
			target, err = base.Readlink(path)
			ferr = err
			return err
		})
	})
	if !recovered {
		return target, ferr
	}
	if op.Errno != 0 {
		return "", op.Err()
	}
	// Re-read through the recovered base with injection gated so a
	// deterministic specimen cannot re-fire inside the retry.
	var target2 string
	var ferr2 error
	r.withInjectionDisabled(func() { target2, ferr2 = r.base.Load().Readlink(path) })
	return target2, ferr2
}

// Stat implements fsapi.FS.
func (r *FS) Stat(path string) (fsapi.Stat, error) {
	op := &oplog.Op{Kind: oplog.KStatProbe, Path: path}
	var st fsapi.Stat
	var serr error
	recovered := r.runProbe(op, func(base *basefs.FS) *fault {
		return r.capture(func() error {
			var err error
			st, err = base.Stat(path)
			serr = err
			return err
		})
	})
	if !recovered {
		return st, serr
	}
	if op.Errno != 0 {
		return fsapi.Stat{}, op.Err()
	}
	var st2 fsapi.Stat
	var serr2 error
	r.withInjectionDisabled(func() { st2, serr2 = r.base.Load().Stat(path) })
	return st2, serr2
}

// Fstat implements fsapi.FS. Like every other read it enters the gate and
// the detection envelope; after a recovery the descriptor is still valid
// (the hand-off reconstructs the fd table), so the probe retries against
// the recovered base.
func (r *FS) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	var st fsapi.Stat
	var serr error
	recovered := r.runProbe(nil, func(base *basefs.FS) *fault {
		return r.capture(func() error {
			var err error
			st, err = base.Fstat(fd)
			serr = err
			return err
		})
	})
	if !recovered {
		return st, serr
	}
	var st2 fsapi.Stat
	var serr2 error
	r.withInjectionDisabled(func() { st2, serr2 = r.base.Load().Fstat(fd) })
	return st2, serr2
}

// Readdir implements fsapi.FS.
func (r *FS) Readdir(path string) ([]fsapi.DirEntry, error) {
	op := &oplog.Op{Kind: oplog.KReadDirProbe, Path: path}
	var ents []fsapi.DirEntry
	var derr error
	recovered := r.runProbe(op, func(base *basefs.FS) *fault {
		return r.capture(func() error {
			var err error
			ents, err = base.Readdir(path)
			derr = err
			return err
		})
	})
	if !recovered {
		return ents, derr
	}
	if op.Errno != 0 {
		return nil, op.Err()
	}
	var ents2 []fsapi.DirEntry
	var derr2 error
	r.withInjectionDisabled(func() { ents2, derr2 = r.base.Load().Readdir(path) })
	return ents2, derr2
}

// SetPerm implements fsapi.FS.
func (r *FS) SetPerm(path string, perm uint16) error {
	op := &oplog.Op{Kind: oplog.KSetPerm, Path: path, Perm: perm}
	r.do(op)
	return op.Err()
}

// Fsync implements fsapi.FS. Syncs take the leader/follower path: the
// leader advances the stable point, followers coalesce inside the base's
// sync rounds.
func (r *FS) Fsync(fd fsapi.FD) error {
	op := &oplog.Op{Kind: oplog.KFsync, FD: fd}
	r.doSync(op)
	return op.Err()
}

// Sync implements fsapi.FS.
func (r *FS) Sync() error {
	op := &oplog.Op{Kind: oplog.KSync}
	r.doSync(op)
	return op.Err()
}
