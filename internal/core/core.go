// Package core implements Robust Alternative Execution (RAE), the paper's
// primary contribution: a supervisor that runs a performance-oriented base
// filesystem in the common case and, when a runtime error is detected,
// masks it by a contained reboot plus re-execution on the shadow filesystem.
//
// The supervisor wraps the base behind the shared fsapi.FS interface and:
//
//  1. records every state-changing operation and its outcome in the
//     operation log, truncating at durable points (§3.2);
//  2. detects runtime errors: panics in base code (contained with recover),
//     kernel-style WARNs (escalation configurable), internal corruption
//     (ErrCorrupt/ErrIO results, including pre-persist sync validation
//     failures), and freezes (per-operation watchdog);
//  3. performs the contained reboot: the faulty base instance is discarded
//     wholesale — caches, fd table, dirty state — and a fresh instance is
//     mounted from trusted on-disk state via journal replay;
//  4. launches the shadow over the same device (read-only, fsck-verified),
//     replays the recorded sequence in constrained mode and the in-flight
//     operation in autonomous mode;
//  5. hands the shadow's sealed metadata update to the rebooted base
//     (metadata download) and returns the in-flight operation's result to
//     the application, which never observes the failure.
//
// The package also hosts the baselines the experiments compare against:
// crash-restart (fail everything back to the application), naive replay
// (Membrane-style re-execution on the base itself, which re-triggers
// deterministic bugs), and 3-version voting (NVP).
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/oplog"
	"repro/internal/telemetry"
)

// Mode selects the failure-handling strategy.
type Mode int

// Modes.
const (
	// ModeRAE is the paper's system: contained reboot + shadow re-execution.
	ModeRAE Mode = iota
	// ModeCrashRestart remounts from disk and fails the in-flight operation
	// and all open descriptors back to the application (the status quo the
	// paper argues against).
	ModeCrashRestart
	// ModeNaiveReplay remounts and re-executes the recorded sequence on the
	// base itself (Membrane-style); deterministic bugs re-trigger (§2.2's
	// fundamental conflict).
	ModeNaiveReplay
)

// String names the mode in experiment tables.
func (m Mode) String() string {
	switch m {
	case ModeRAE:
		return "rae"
	case ModeCrashRestart:
		return "crash-restart"
	case ModeNaiveReplay:
		return "naive-replay"
	}
	return "unknown"
}

// Config tunes the supervisor.
type Config struct {
	// Base configures the base filesystem instances (cache sizes, the bug
	// injector, extra checks).
	Base basefs.Options
	// Mode selects RAE or a baseline strategy.
	Mode Mode
	// EscalateWarns treats WARN records as detected errors that trigger
	// recovery (Table 1 counts WARNs among detectable consequences). When
	// false WARNs are logged and execution continues.
	EscalateWarns bool
	// Watchdog bounds each operation's execution; 0 disables freeze
	// detection.
	Watchdog time.Duration
	// StopOnDiscrepancy aborts recovery when the shadow's constrained replay
	// disagrees with a recorded outcome, degrading to crash-restart.
	StopOnDiscrepancy bool
	// MaxReplayRetries bounds naive replay's re-execution attempts before it
	// degrades to crash-restart.
	MaxReplayRetries int
	// SkipFsckInRecovery skips the shadow's image check during recovery (for
	// phase-isolating benchmarks only).
	SkipFsckInRecovery bool
	// Telemetry selects the observability sink. Nil uses the process-global
	// telemetry.Default() sink: a supervised filesystem is always observable
	// unless NoTelemetry opts out.
	Telemetry *telemetry.Sink
	// NoTelemetry disables observability entirely; every instrument becomes a
	// nil no-op costing one pointer check. Used by overhead-isolating
	// benchmarks.
	NoTelemetry bool
}

func (c *Config) fill() {
	if c.MaxReplayRetries == 0 {
		c.MaxReplayRetries = 3
	}
	if c.NoTelemetry {
		c.Telemetry = nil
	} else if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
	c.Base.Telemetry = c.Telemetry
}

// RecoveryPhases breaks one recovery's latency into the paper's steps.
type RecoveryPhases struct {
	Reboot time.Duration // kill + journal replay + fresh mount
	Fsck   time.Duration // shadow's image validation
	Replay time.Duration // shadow constrained + autonomous execution
	Absorb time.Duration // metadata download into the base
}

// Total returns the end-to-end recovery latency.
func (p RecoveryPhases) Total() time.Duration {
	return p.Reboot + p.Fsck + p.Replay + p.Absorb
}

// Stats aggregates supervisor activity for the experiments.
type Stats struct {
	OpsExecuted    int64
	OpsRecorded    int64
	StablePoints   int64
	Recoveries     int64
	Degradations   int64 // recoveries that fell back to crash-restart
	PanicsCaught   int64
	WarnsSeen      int64
	WarnsEscalated int64
	Freezes        int64
	FaultResults   int64 // ErrCorrupt/ErrIO outcomes intercepted
	FDsInvalidated int64 // descriptors lost to crash-restart semantics
	AppFailures    int64 // operations that surfaced a failure to the app
	OpsReplayed    int64
	Discrepancies  int64
	TotalDowntime  time.Duration
	Phases         []RecoveryPhases
	PeakLogLen     int
}

// FS is the RAE-supervised filesystem. It implements fsapi.FS; applications
// use it exactly like the base.
type FS struct {
	mu   sync.Mutex
	dev  blockdev.Device
	base *basefs.FS
	// fence is the current base instance's device handle; raised at the
	// start of every contained reboot so abandoned operations cannot touch
	// the device the recovery works from.
	fence        *fencedDevice
	log          *oplog.Log
	cfg          Config
	stats        Stats
	warns        warnCounter
	opStartWarns atomic.Int64
	// tel is the observability sink (nil when Config.NoTelemetry); set once
	// at Mount and read-only afterwards.
	tel *telemetry.Sink

	// lastDisc keeps the most recent recovery's discrepancy reports for
	// post-mortem inspection (§4.3: "reporting the discrepancies is
	// necessary").
	lastDisc []difftest.Discrepancy
}

var _ fsapi.FS = (*FS)(nil)

// Mount brings up a supervised filesystem over a formatted device.
func Mount(dev blockdev.Device, cfg Config) (*FS, error) {
	cfg.fill()
	fs := &FS{dev: dev, log: oplog.NewLog(), cfg: cfg, tel: cfg.Telemetry}
	fs.warns.next = cfg.Base.OnWarn
	fs.log.SetTelemetry(fs.tel)
	base, fence, err := fs.mountBase()
	if err != nil {
		return nil, err
	}
	fs.base, fs.fence = base, fence
	fs.log.Stable(base.OpenFDs(), base.Clock())
	return fs, nil
}

// Telemetry returns the supervisor's observability sink (nil when mounted
// with NoTelemetry). Recovery traces, the event journal, and all layer
// metrics are queryable from it.
func (r *FS) Telemetry() *telemetry.Sink { return r.tel }

// Unmount syncs and stops the supervised filesystem.
func (r *FS) Unmount() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base.Unmount()
}

// Kill abandons the supervised filesystem without syncing (tests).
func (r *FS) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.base.Kill()
}

// Stats returns a copy of the supervisor's counters.
func (r *FS) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.PeakLogLen = r.log.PeakLen()
	s.Phases = append([]RecoveryPhases(nil), r.stats.Phases...)
	return s
}

// LastDiscrepancies returns the constrained-replay disagreements from the
// most recent recovery.
func (r *FS) LastDiscrepancies() []difftest.Discrepancy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]difftest.Discrepancy(nil), r.lastDisc...)
}

// Base exposes the current base instance for experiment instrumentation
// (cache hit rates). The instance changes across recoveries.
func (r *FS) Base() *basefs.FS {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base
}

// LogLen returns the current recorded-operation count (recovery cost driver).
func (r *FS) LogLen() int { return r.log.Len() }

// DumpLog serializes the current recovery input — the recorded sequence,
// the stable-point descriptor table, and the clock — in the wire format a
// shadow process consumes. cmd/shadowreplay replays such dumps offline as
// the §4.3 post-error testing tool.
func (r *FS) DumpLog() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops, fds, clk := r.log.Snapshot()
	return oplog.EncodeSequence(ops, fds, clk)
}

// Injector returns the registry shared with the base, if any.
func (r *FS) Injector() *faultinject.Registry { return r.cfg.Base.Injector }

// --- fsapi.FS facade: every method funnels into do() ---

// Mkdir implements fsapi.FS.
func (r *FS) Mkdir(path string, perm uint16) error {
	op := &oplog.Op{Kind: oplog.KMkdir, Path: path, Perm: perm}
	r.do(op)
	return op.Err()
}

// Rmdir implements fsapi.FS.
func (r *FS) Rmdir(path string) error {
	op := &oplog.Op{Kind: oplog.KRmdir, Path: path}
	r.do(op)
	return op.Err()
}

// Create implements fsapi.FS.
func (r *FS) Create(path string, perm uint16) (fsapi.FD, error) {
	op := &oplog.Op{Kind: oplog.KCreate, Path: path, Perm: perm}
	r.do(op)
	return op.RetFD, op.Err()
}

// Open implements fsapi.FS.
func (r *FS) Open(path string) (fsapi.FD, error) {
	op := &oplog.Op{Kind: oplog.KOpen, Path: path}
	r.do(op)
	return op.RetFD, op.Err()
}

// Close implements fsapi.FS.
func (r *FS) Close(fd fsapi.FD) error {
	op := &oplog.Op{Kind: oplog.KClose, FD: fd}
	r.do(op)
	return op.Err()
}

// ReadAt implements fsapi.FS. Reads are not recorded, but they run under the
// same detection envelope: a read that trips a bug triggers recovery and is
// satisfied by the shadow.
func (r *FS) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &oplog.Op{Kind: oplog.KReadProbe, FD: fd, Off: off, Size: int64(n)}
	data, fault := r.execRead(fd, off, n)
	if fault == nil {
		return data, nil
	}
	r.recoverFrom(fault, op)
	if op.Errno != 0 {
		return nil, op.Err()
	}
	// The shadow executed the in-flight read during recovery; its bytes are
	// the authoritative result.
	return op.RetData, nil
}

// WriteAt implements fsapi.FS.
func (r *FS) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	op := &oplog.Op{Kind: oplog.KWrite, FD: fd, Off: off, Data: data}
	r.do(op)
	return op.RetN, op.Err()
}

// Truncate implements fsapi.FS.
func (r *FS) Truncate(path string, size int64) error {
	op := &oplog.Op{Kind: oplog.KTruncate, Path: path, Size: size}
	r.do(op)
	return op.Err()
}

// Unlink implements fsapi.FS.
func (r *FS) Unlink(path string) error {
	op := &oplog.Op{Kind: oplog.KUnlink, Path: path}
	r.do(op)
	return op.Err()
}

// Rename implements fsapi.FS.
func (r *FS) Rename(oldPath, newPath string) error {
	op := &oplog.Op{Kind: oplog.KRename, Path: oldPath, Path2: newPath}
	r.do(op)
	return op.Err()
}

// Link implements fsapi.FS.
func (r *FS) Link(oldPath, newPath string) error {
	op := &oplog.Op{Kind: oplog.KLink, Path: oldPath, Path2: newPath}
	r.do(op)
	return op.Err()
}

// Symlink implements fsapi.FS.
func (r *FS) Symlink(target, linkPath string) error {
	op := &oplog.Op{Kind: oplog.KSymlink, Path: linkPath, Path2: target}
	r.do(op)
	return op.Err()
}

// Readlink implements fsapi.FS.
func (r *FS) Readlink(path string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var target string
	var ferr error
	base := r.base
	fault := r.capture(func() error {
		var err error
		target, err = base.Readlink(path)
		ferr = err
		return err
	})
	if fault == nil {
		return target, ferr
	}
	op := &oplog.Op{Kind: oplog.KStatProbe, Path: path}
	r.recoverFrom(fault, op)
	if op.Errno != 0 {
		return "", op.Err()
	}
	// Re-read through the recovered base with injection gated so a
	// deterministic specimen cannot re-fire inside the retry.
	var target2 string
	var ferr2 error
	r.withInjectionDisabled(func() { target2, ferr2 = r.base.Readlink(path) })
	return target2, ferr2
}

// Stat implements fsapi.FS.
func (r *FS) Stat(path string) (fsapi.Stat, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st fsapi.Stat
	var serr error
	base := r.base
	fault := r.capture(func() error {
		var err error
		st, err = base.Stat(path)
		serr = err
		return err
	})
	if fault == nil {
		return st, serr
	}
	op := &oplog.Op{Kind: oplog.KStatProbe, Path: path}
	r.recoverFrom(fault, op)
	if op.Errno != 0 {
		return fsapi.Stat{}, op.Err()
	}
	var st2 fsapi.Stat
	var serr2 error
	r.withInjectionDisabled(func() { st2, serr2 = r.base.Stat(path) })
	return st2, serr2
}

// Fstat implements fsapi.FS.
func (r *FS) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base.Fstat(fd)
}

// Readdir implements fsapi.FS.
func (r *FS) Readdir(path string) ([]fsapi.DirEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ents []fsapi.DirEntry
	var derr error
	base := r.base
	fault := r.capture(func() error {
		var err error
		ents, err = base.Readdir(path)
		derr = err
		return err
	})
	if fault == nil {
		return ents, derr
	}
	op := &oplog.Op{Kind: oplog.KReadDirProbe, Path: path}
	r.recoverFrom(fault, op)
	if op.Errno != 0 {
		return nil, op.Err()
	}
	var ents2 []fsapi.DirEntry
	var derr2 error
	r.withInjectionDisabled(func() { ents2, derr2 = r.base.Readdir(path) })
	return ents2, derr2
}

// SetPerm implements fsapi.FS.
func (r *FS) SetPerm(path string, perm uint16) error {
	op := &oplog.Op{Kind: oplog.KSetPerm, Path: path, Perm: perm}
	r.do(op)
	return op.Err()
}

// Fsync implements fsapi.FS.
func (r *FS) Fsync(fd fsapi.FD) error {
	op := &oplog.Op{Kind: oplog.KFsync, FD: fd}
	r.do(op)
	return op.Err()
}

// Sync implements fsapi.FS.
func (r *FS) Sync() error {
	op := &oplog.Op{Kind: oplog.KSync}
	r.do(op)
	return op.Err()
}
