package core

import (
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/fsck"
	"repro/internal/workload"
)

// TestSoakRAEAgainstModel is the long-running confidence run: thousands of
// operations per profile with a cocktail of probabilistic bug specimens
// (crashes, WARNs, freezes, spurious errors) firing throughout, periodic
// syncs, and full outcome + state equivalence against the bug-free
// specification at the end. The on-disk image must also be fsck-clean after
// unmount.
func TestSoakRAEAgainstModel(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, profile := range workload.Profiles() {
		t.Run(profile.String(), func(t *testing.T) {
			reg := faultinject.NewRegistry(int64(profile) + 100)
			reg.Arm(&faultinject.Specimen{
				ID: "soak-crash", Class: faultinject.Crash,
				Prob: 0.004, Point: "entry",
			})
			reg.Arm(&faultinject.Specimen{
				ID: "soak-warn", Class: faultinject.Warn,
				Prob: 0.004, Point: "entry",
			})
			reg.Arm(&faultinject.Specimen{
				ID: "soak-eio", Class: faultinject.ErrReturn,
				Prob: 0.002, Point: "exit",
			})
			fs, dev, sb := newSupervised(t, Config{
				Base:          basefs.Options{Injector: reg},
				EscalateWarns: true,
			})
			trace := workload.Generate(workload.Config{
				Profile: profile, Seed: 77, NumOps: 3000, Superblock: sb, SyncEvery: 150,
			})
			outcome, state := runAgainstModel(t, fs, sb, trace)
			for i, d := range outcome {
				if i >= 5 {
					t.Errorf("... and %d more outcome diffs", len(outcome)-5)
					break
				}
				t.Errorf("outcome: %s", d)
			}
			for i, d := range state {
				if i >= 5 {
					break
				}
				t.Errorf("state: %s", d)
			}
			st := fs.Stats()
			t.Logf("%s: %d ops, %d recoveries (%d panics, %d warns escalated, %d eio), %d replayed, downtime %v",
				profile, st.OpsExecuted, st.Recoveries, st.PanicsCaught,
				st.WarnsEscalated, st.FaultResults, st.OpsReplayed, st.TotalDowntime)
			if st.Recoveries == 0 {
				t.Error("soak never triggered a recovery")
			}
			if st.AppFailures != 0 {
				t.Errorf("app failures: %d", st.AppFailures)
			}
			if err := fs.Unmount(); err != nil {
				t.Fatal(err)
			}
			if rep := fsck.Check(dev); !rep.Clean() {
				for i, p := range rep.Problems {
					if i >= 5 {
						break
					}
					t.Errorf("fsck: %s", p)
				}
			}
		})
	}
}
