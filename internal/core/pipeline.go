package core

import (
	"fmt"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fsck"
	"repro/internal/fserr"
	"repro/internal/handoff"
	"repro/internal/journal"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
	"repro/internal/telemetry"
)

// The recovery engine. raeRecover runs the paper's procedure (§3.2) as a
// staged graph instead of a straight line:
//
//	plan ──┬── reboot ─────────────┬── install ── resume
//	       ├── fsck ───────────────┤
//	       └── replay ─────chunks──┘
//
// The contained reboot and the shadow's replay have no data dependency: the
// reboot's journal replay rewrites home locations on the device, while the
// shadow works from a frozen read-only view built at plan time — the raw
// device overlaid with the journal's committed-transaction writes (the
// exact post-replay logical image) and the pre-reboot superblock. The two
// stages therefore run concurrently, and the shadow streams its result out
// as sealed chunks that the install stage absorbs into the fresh base as
// they arrive. Recovery latency approaches max(reboot, replay) + install
// instead of their sum. Config.SequentialRecovery collapses the graph back
// to the straight line for comparison.

// replayFeedBatch is the op-count granularity of the incremental replay: a
// chunk is emitted (at most) every replayFeedBatch ops, bounding both the
// latency before the install stage has work and the per-chunk copy size.
const replayFeedBatch = 256

// warmMaxOverlayBlocks bounds the overlay a retained warm replayer may pin
// in memory between faults; a larger recovery is not retained.
const warmMaxOverlayBlocks = 8192

// deferredSyncRetries bounds the extra attempts the resume path gives a
// deferred sync re-run that keeps hitting device-level faults before it
// declares a degradation. Transient faults clear within a retry or two; a
// device that refuses every attempt is genuinely unwritable.
const deferredSyncRetries = 3

// recoveryPlan freezes everything the overlapped stages need before the
// contained reboot starts: the recovery input (snapshotted and round-tripped
// through the wire format, proving it is self-contained), the shadow's
// frozen device view, and the warm replayer when the previous recovery's
// engine is still valid. Built with the gate held exclusively and the old
// instance fenced, so the device is quiescent.
type recoveryPlan struct {
	ops []*oplog.Op
	fds map[fsapi.FD]uint32
	clk uint64

	// inFlight is the faulted op the shadow executes autonomously; nil when
	// the fault arose outside an op or the op is a sync (deferredSync).
	inFlight     *oplog.Op
	deferredSync bool

	// rep, when non-nil, is the retained warm engine: ops then holds only
	// the not-yet-consumed suffix of the log, and reused counts the ops the
	// retained state already covers.
	rep    *shadowfs.Replayer
	reused int
	// view is the cold path's frozen read-only device view for the shadow.
	view blockdev.Device
	// prefetch, when non-nil, is the background crew caching view's blocks;
	// released when the engine is done with the cold stage.
	prefetch *blockdev.Prefetched

	// check validates the frozen view; chosen at plan time (scoped, parallel,
	// or sequential — see planFsck). Nil when the check is skipped (config or
	// warm resume).
	check func() *fsck.Report
	// touchedOld is the touched-block set drained when this plan claimed the
	// scoped-check baseline; merged back if the recovery fails so no write
	// ever escapes the next check's scope.
	touchedOld map[uint32]struct{}

	errWhat string
	err     error
}

// release reclaims the plan's background resources; safe on any plan.
func (p *recoveryPlan) release() { p.prefetch.Release() }

// planRecovery builds the stage inputs. Errors are recorded in the plan,
// not returned: the engine still performs the contained reboot and then
// degrades on the fresh base, preserving the pre-pipeline failure behavior.
func (r *FS) planRecovery(inflight *oplog.Op) *recoveryPlan {
	p := &recoveryPlan{}
	if inflight != nil {
		if inflight.Kind == oplog.KFsync || inflight.Kind == oplog.KSync {
			// "The base [performs] fsync again after the hand-off" (§3.3).
			p.deferredSync = true
		} else {
			p.inFlight = inflight
		}
	}

	// Warm candidate: the engine retained by the previous recovery is valid
	// only if nothing moved underneath it — same op-log stable point, same
	// device write generation. Consumed (and re-retained on success) so no
	// stale engine survives a recovery that invalidates it.
	rep := r.warm
	r.warm = nil
	total := r.log.Len()
	key := shadowfs.ReplayerKey{StableSeq: r.log.StableSeq(), DevGen: r.devGen.Load()}
	// An external (scrub-tripped) fault exists to re-examine the image; the
	// warm path skips the check entirely, so it is disqualified even when the
	// key still matches (a scrub trip writes nothing, so it usually does).
	if rep != nil && rep.Key() == key && !r.extFault {
		ops, _, _ := r.log.SnapshotSince(rep.NextSeq())
		// The suffix crosses the isolation boundary like any recovery input.
		wire := oplog.EncodeSequence(ops, map[fsapi.FD]uint32{}, 0)
		ops, _, _, err := oplog.DecodeSequence(wire)
		if err != nil {
			p.errWhat, p.err = "trace decode", err
			return p
		}
		p.rep, p.ops, p.reused = rep, ops, total-len(ops)
		return p
	}

	// Cold path: full snapshot plus a frozen device view. The view is the
	// raw device overlaid with the journal's committed writes — the same
	// logical image the reboot's journal replay produces — plus the current
	// superblock, so the concurrent mount's own writes (journal replay to
	// home locations, the superblock rewrite) are invisible to the shadow.
	ops, fds, clk := r.log.Snapshot()
	wire := oplog.EncodeSequence(ops, fds, clk)
	ops, fds, clk, err := oplog.DecodeSequence(wire)
	if err != nil {
		p.errWhat, p.err = "trace decode", err
		return p
	}
	p.ops, p.fds, p.clk = ops, fds, clk

	shadowDev := blockdev.Instrument(r.dev, r.tel, "shadow")
	sbb, err := shadowDev.ReadBlock(0)
	if err != nil {
		p.errWhat, p.err = "shadow view", err
		return p
	}
	sb, err := disklayout.DecodeSuperblock(sbb)
	if err != nil {
		p.errWhat, p.err = "shadow view", err
		return p
	}
	over, _, err := journal.CommittedOverlay(shadowDev, sb)
	if err != nil {
		p.errWhat, p.err = "shadow view", err
		return p
	}
	if _, ok := over[0]; !ok {
		// Freeze the superblock too: the mount rewrites block 0 (dirty flag,
		// generation bump) concurrently with the shadow's startup read. A
		// committed transaction targeting block 0 takes precedence — that is
		// the post-replay superblock.
		over[0] = sbb
	}
	p.view = blockdev.NewOverlay(shadowDev, over)
	if !r.cfg.SequentialRecovery && r.cfg.RecoveryPrefetchWorkers > 0 {
		// Pipeline the view's IO too: a worker crew streams the image into a
		// read cache while fsck and replay consume it, so their serial
		// blocking reads stop paying the device's per-IO service time.
		p.prefetch = blockdev.NewPrefetched(p.view, r.cfg.RecoveryPrefetchWorkers)
		p.view = p.prefetch
	}
	r.planFsck(p, over)
	return p
}

// planFsck picks the check the replay stage will run over the frozen view
// and claims the scoped-check baseline. Runs with the gate held exclusively
// (the only context where draining the touched set is sound). The scope of
// a region-scoped check is everything that can differ from the last
// verified image: every block written through a fence since (touchedOld),
// every block the journal overlay rewrites, and the superblock.
func (r *FS) planFsck(p *recoveryPlan, over map[uint32][]byte) {
	if r.cfg.SkipFsckInRecovery {
		return
	}
	p.touchedOld = r.touched.snapshotAndReset()
	view, workers := p.view, r.cfg.FsckWorkers
	if r.cfg.SequentialRecovery {
		p.check = func() *fsck.Report { return fsck.Check(view) }
		return
	}
	if r.verified.Load() && !r.cfg.DisableScopedFsck {
		sc := fsck.NewScope()
		sc.Add(0)
		for blk := range p.touchedOld {
			sc.Add(blk)
		}
		for blk := range over {
			sc.Add(blk)
		}
		p.check = func() *fsck.Report { return fsck.CheckScoped(view, sc, workers) }
		return
	}
	p.check = func() *fsck.Report { return fsck.CheckParallel(view, workers) }
}

// noteFsck records which flavor of check a recovery ran.
func (r *FS) noteFsck(rep *fsck.Report) {
	if rep.Scoped {
		r.cnt.fsckScoped.Add(1)
		r.tel.Counter("recovery.fsck.scoped").Inc()
		return
	}
	r.cnt.fsckFull.Add(1)
	r.tel.Counter("recovery.fsck.full").Inc()
}

// fsckTrust settles the scoped-check trust state for one recovery. On any
// failed or degraded recovery the baseline is revoked and the drained
// touched set merged back — over-scoping the next check is safe, losing a
// block from it is not. A successful recovery that actually checked the
// image (p.check non-nil: warm resumes and SkipFsckInRecovery never do)
// establishes a fresh baseline — every write after the frozen view went
// through a fence created over the same touched set, so the superset
// invariant holds from the view onward — and ends any scrub corruption
// episode.
func (r *FS) fsckTrust(p *recoveryPlan, ok bool) {
	if !ok {
		r.verified.Store(false)
		r.touched.merge(p.touchedOld)
		return
	}
	if p.check != nil {
		r.verified.Store(true)
		r.scrubTripped.Store(false)
	}
}

// replayOutcome is everything the replay stage hands back to the engine.
type replayOutcome struct {
	rep      *shadowfs.Replayer
	manifest *handoff.Manifest
	inFlight *oplog.Op

	fsckDur   time.Duration
	replayDur time.Duration
	// stageDur is the stage's wall clock; with the fsck/replay overlap it is
	// less than the two components' sum.
	stageDur time.Duration

	// opsReplayed and newDisc are this recovery's deltas (a warm engine's
	// counters span its whole lifetime); discs is the full list.
	opsReplayed int
	discs       []difftest.Discrepancy
	newDisc     int

	errWhat string
	err     error
}

// runReplayStage validates the image (cold path), replays the recorded gap
// incrementally, and emits sealed chunks through emit as it goes. It never
// touches supervisor state mutated by the concurrent reboot; emit must be
// safe for the engine's chosen plumbing (channel send or slice append).
//
// With overlapFsck, the cold path checks the image *concurrently* with the
// replay (the pFSCK-style decomposition): replay proceeds optimistically
// over the unvalidated view while fsck walks the same frozen, read-only
// blocks, and the stage only reports success once both agree. A failed
// check surfaces exactly like the sequential fsck-first error — the engine
// discards the partially-absorbed base — so the overlap changes latency,
// never the contract that nothing recovered ever came from a corrupt image.
func (r *FS) runReplayStage(p *recoveryPlan, overlapFsck bool, emit func(*handoff.Chunk)) *replayOutcome {
	out := &replayOutcome{}
	rep := p.rep
	var fsckCh chan error
	if rep == nil {
		switch {
		case p.check != nil && overlapFsck:
			fsckCh = make(chan error, 1)
			go func() {
				t := time.Now()
				frep := p.check()
				out.fsckDur = time.Since(t) // joined before out is read
				r.noteFsck(frep)
				fsckCh <- frep.Err()
			}()
		case p.check != nil:
			// Sequential mode: the check gates the stage up front, exactly the
			// pre-pipeline ordering.
			t := time.Now()
			frep := p.check()
			out.fsckDur = time.Since(t)
			r.noteFsck(frep)
			if err := frep.Err(); err != nil {
				out.errWhat, out.err = "shadow fsck", err
				return out
			}
		}
		// The plan's check (or its configured absence) owns image validation;
		// the shadow mount never duplicates it.
		sh, err := shadowfs.New(p.view, shadowfs.Options{SkipFsck: true})
		if err != nil {
			if fsckCh != nil {
				<-fsckCh
			}
			out.errWhat, out.err = "shadow mount", err
			return out
		}
		rep = shadowfs.NewReplayer(sh, shadowfs.ReplayerKey{}, r.cfg.StopOnDiscrepancy)
	} else {
		// Warm resume: the overlay, descriptor table, and clock carry over;
		// the chunk stream restarts from zero because the fresh base has
		// absorbed nothing. Fsck is not re-run — the image was validated by
		// the cold recovery and nothing wrote to the device since (the key
		// check in planRecovery), which is the bulk of the warm win.
		rep.ResetStream()
	}
	out.rep = rep
	opsBefore, discBefore := rep.OpsReplayed(), len(rep.Discrepancies())
	t := time.Now()
	err := func() (err error) {
		// Optimistic replay may run over a not-yet-validated image; the
		// shadow's runtime checks turn corruption into errors, but a panic on
		// adversarial input must degrade this recovery, not kill the process.
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("shadow panicked during replay: %v: %w", rec, fserr.ErrCorrupt)
			}
		}()
		if p.rep == nil {
			if err := rep.Seed(p.fds, p.clk); err != nil {
				return err
			}
		}
		for i := 0; i < len(p.ops); i += replayFeedBatch {
			end := i + replayFeedBatch
			if end > len(p.ops) {
				end = len(p.ops)
			}
			if err := rep.Feed(p.ops[i:end]); err != nil {
				return err
			}
			if c := rep.EmitChunk(); c != nil {
				emit(c)
			}
		}
		last, m, fl, err := rep.Finish(p.inFlight)
		if err != nil {
			return err
		}
		if last != nil {
			emit(last)
		}
		out.manifest, out.inFlight = m, fl
		return nil
	}()
	out.replayDur = time.Since(t)
	if err != nil {
		out.errWhat, out.err = "shadow replay", err
	}
	if fsckCh != nil {
		// Join the concurrent check; its verdict gates the stage regardless of
		// how the optimistic replay fared.
		if ferr := <-fsckCh; ferr != nil {
			out.errWhat, out.err = "shadow fsck", ferr
			out.manifest, out.inFlight = nil, nil
		}
	}
	out.opsReplayed = rep.OpsReplayed() - opsBefore
	out.discs = rep.Discrepancies()
	out.newDisc = len(out.discs) - discBefore
	return out
}

// observeStage records one engine stage's duration in the per-stage
// histogram family.
func (r *FS) observeStage(name string, d time.Duration) {
	r.tel.Histogram("recovery.stage." + name + "_ns").Observe(d)
}

// raeRecover is the paper's recovery procedure (§3.2) on the staged engine:
// contained reboot and shadow re-execution overlapped, hand-off streamed,
// resume. Returns the trace outcome ("recovered", "degraded", or "failed").
func (r *FS) raeRecover(tr *telemetry.Trace, inflight *oplog.Op) string {
	wall0 := time.Now()
	var ph RecoveryPhases

	// Fence the faulty instance, kill it, and freeze the plan while the
	// device is quiescent.
	tr.BeginPhase(telemetry.PhaseFence)
	r.fence.Load().raise()
	r.base.Load().Kill()
	t := time.Now()
	plan := r.planRecovery(inflight)
	r.observeStage("plan", time.Since(t))
	// The prefetch crew and its cache live for this recovery only; a shadow
	// retained warm keeps the view, which degrades to pass-through reads.
	defer plan.release()

	note := ""
	switch {
	case plan.rep != nil:
		note = "warm resume"
	case r.cfg.SkipFsckInRecovery:
		note = "fsck skipped"
	}

	// Launch the replay stage concurrently with the reboot. The chunk
	// channel is drained by the install stage once the mount completes; its
	// buffer only smooths production, it is not load-bearing.
	pipelined := plan.err == nil && !r.cfg.SequentialRecovery
	var chunkCh chan *handoff.Chunk
	var outCh chan *replayOutcome
	if pipelined {
		chunkCh = make(chan *handoff.Chunk, 64)
		outCh = make(chan *replayOutcome, 1)
		go func() {
			t0 := time.Now()
			out := r.runReplayStage(plan, true, func(c *handoff.Chunk) { chunkCh <- c })
			out.stageDur = time.Since(t0)
			close(chunkCh)
			outCh <- out
		}()
	}
	// drain joins the replay goroutine on paths that abandon its output.
	drain := func() {
		if pipelined {
			for range chunkCh {
			}
			<-outCh
		}
	}

	// Contained reboot: fresh instance from trusted on-disk state (journal
	// replay inside Mount).
	tr.BeginPhase(telemetry.PhaseReboot)
	t = time.Now()
	newBase, newFence, err := r.mountBase()
	ph.Reboot = time.Since(t)
	r.observeStage("reboot", ph.Reboot)
	if err != nil {
		// The device itself is unusable; nothing recovers this.
		drain()
		r.fsckTrust(plan, false)
		r.tel.Event("degrade", "recovery failed: remount: %v", err)
		r.failOp(inflight)
		r.cnt.degradations.Add(1)
		r.addPhases(ph)
		return "failed"
	}
	if plan.err != nil {
		r.fsckTrust(plan, false)
		return r.degrade(newBase, newFence, inflight, ph, plan.errWhat+": %v", plan.err)
	}
	// A warm reboot may still find committed transactions in the journal
	// (lazy checkpointing leaves them behind), and its replay rewrites their
	// home locations — but under the devGen key check those bytes were
	// already replayed by the mount the warm engine was built over, so the
	// rewrite is byte-idempotent and the retained overlay stays valid.
	// newBase.MountReplay() exposes the replay for post-mortems.

	// Hand-off: absorb sealed chunks as they stream out of the shadow. In
	// sequential mode the replay stage runs here instead, after the reboot.
	var out *replayOutcome
	var installErr error
	dirty := false // has newBase absorbed any part of the stream?
	t = time.Now()
	if pipelined {
		tr.BeginPhase(telemetry.PhaseHandoff)
		for c := range chunkCh {
			if installErr != nil {
				continue // keep draining so the producer never blocks
			}
			if err := newBase.AbsorbChunk(c); err != nil {
				installErr = err
				dirty = true // a failed absorb may have installed a prefix
				continue
			}
			dirty = true
		}
		out = <-outCh
	} else {
		tr.BeginPhase(telemetry.PhaseShadowExec)
		if note != "" {
			tr.Note("%s", note)
		}
		var buf []*handoff.Chunk
		t0 := time.Now()
		out = r.runReplayStage(plan, false, func(c *handoff.Chunk) { buf = append(buf, c) })
		out.stageDur = time.Since(t0)
		tr.BeginPhase(telemetry.PhaseHandoff)
		t = time.Now()
		for _, c := range buf {
			if err := newBase.AbsorbChunk(c); err != nil {
				installErr = err
				dirty = true
				break
			}
			dirty = true
		}
	}
	ph.Absorb = time.Since(t)
	ph.Fsck = out.fsckDur
	ph.Replay = out.replayDur
	r.observeStage("fsck", out.fsckDur)
	r.observeStage("replay", out.replayDur)
	if pipelined {
		// The overlapped stage's time is reported as its own span; the
		// orchestrator's handoff span covers the whole drain window.
		tr.AddSpan(telemetry.PhaseShadowExec, out.stageDur, note)
	}

	r.cnt.opsReplayed.Add(int64(out.opsReplayed))
	r.cnt.discrepancies.Add(int64(out.newDisc))
	r.postMu.Lock()
	r.lastDisc = out.discs
	r.postMu.Unlock()
	tr.SetOpsReplayed(out.opsReplayed)
	for _, d := range out.discs[len(out.discs)-out.newDisc:] {
		r.tel.Event("discrepancy", "%s", d.String())
	}
	if plan.rep != nil {
		r.cnt.opsReused.Add(int64(plan.reused))
		r.tel.Counter("recovery.replay.reused_ops").Add(int64(plan.reused))
	}

	if out.err != nil {
		// The shadow itself failed (corrupt image, divergence under
		// StopOnDiscrepancy, or a shadow bug): degrade loudly.
		r.fsckTrust(plan, false)
		return r.degradeDirty(newBase, newFence, dirty, inflight, ph, out.errWhat+": %v", out.err)
	}
	if installErr != nil {
		r.fsckTrust(plan, false)
		return r.degradeDirty(newBase, newFence, true, inflight, ph, "absorb chunk: %v", installErr)
	}
	t = time.Now()
	if err := newBase.AbsorbManifest(out.manifest); err != nil {
		ph.Absorb += time.Since(t)
		r.fsckTrust(plan, false)
		return r.degradeDirty(newBase, newFence, true, inflight, ph, "absorb manifest: %v", err)
	}
	ph.Absorb += time.Since(t)
	r.observeStage("install", ph.Absorb)
	r.base.Store(newBase)
	r.fence.Store(newFence)

	// Resume: answer the in-flight operation and keep the log coherent.
	// Recorded operations stay in the log — they are still not durable.
	tr.BeginPhase(telemetry.PhaseResume)
	t = time.Now()
	if inflight != nil {
		switch {
		case plan.deferredSync:
			// "If the base fails in the middle of fsync, our current design
			// relies on the shadow for the prefix operations and the base to
			// perform fsync again after the hand-off" (§3.3). The WARN that
			// vetoed the original persist was consumed by this recovery, so
			// the pre-persist barrier starts fresh for the re-run.
			//
			// The re-run stays inside the detection envelope: injected
			// specimens are disabled (a deterministic bug on the sync seam
			// would re-fire on every attempt), and a device-level fault gets
			// a bounded number of fresh attempts. A sync the device
			// persistently refuses is a failure no shadow can mask — the
			// application must see it, but only as an explicit degradation,
			// never as a silently leaked errno.
			for attempt := 0; ; attempt++ {
				r.warnsHandled.Store(r.warns.n.Load())
				r.withInjectionDisabled(func() {
					_ = oplog.Apply(r.base.Load(), inflight)
				})
				if !fserr.IsFault(fserr.FromErrno(inflight.Errno)) || attempt >= deferredSyncRetries {
					break
				}
				r.cnt.syncRetries.Add(1)
			}
			if inflight.Errno == 0 {
				r.afterSuccess(inflight)
			} else {
				if fserr.IsFault(fserr.FromErrno(inflight.Errno)) {
					r.cnt.degradations.Add(1)
					r.tel.Event("degrade",
						"deferred sync re-run still faulting after %d attempts: errno %d",
						deferredSyncRetries+1, inflight.Errno)
				}
				r.cnt.appFailures.Add(1)
			}
		case out.inFlight != nil:
			*inflight = *out.inFlight
			r.afterSuccess(inflight)
		}
	}
	r.observeStage("resume", time.Since(t))

	r.retainWarm(out.rep)
	r.fsckTrust(plan, true)

	ph.Wall = time.Since(wall0)
	r.observeStage("wall", ph.Wall)
	r.addPhases(ph)
	return "recovered"
}

// retainWarm keeps the replay engine for the next fault. The key is
// captured after the resume path's own device writes (the deferred sync
// re-run, whose durable round also moves the stable point), so it names
// exactly the state the retained overlay extends; MarkConsumed covers the
// appended in-flight op so a warm resume fetches only genuinely new ops.
func (r *FS) retainWarm(rep *shadowfs.Replayer) {
	if rep == nil || rep.Shadow().OverlayBlocks() > warmMaxOverlayBlocks {
		return
	}
	rep.MarkConsumed(r.log.Watermark())
	rep.Rekey(shadowfs.ReplayerKey{StableSeq: r.log.StableSeq(), DevGen: r.devGen.Load()})
	r.warm = rep
}

// degradeDirty degrades to crash-restart semantics, first discarding the
// fresh base if it absorbed part of a chunk stream: a stream prefix without
// its manifest is unverified state, so the instance is killed and a clean
// one mounted before the degrade bookkeeping runs.
func (r *FS) degradeDirty(newBase *basefs.FS, newFence *fencedDevice, dirty bool,
	inflight *oplog.Op, ph RecoveryPhases, reasonFormat string, args ...any) string {
	if dirty {
		newFence.raise()
		newBase.Kill()
		nb, nf, err := r.mountBase()
		if err != nil {
			r.cnt.degradations.Add(1)
			r.tel.Event("degrade", "recovery failed after partial absorb: remount: %v", err)
			r.failOp(inflight)
			r.addPhases(ph)
			return "failed"
		}
		newBase, newFence = nb, nf
	}
	return r.degrade(newBase, newFence, inflight, ph, reasonFormat, args...)
}
