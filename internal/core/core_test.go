package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/workload"
)

func newSupervised(t *testing.T, cfg Config) (*FS, *blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(16384)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Kill)
	return fs, dev, sb
}

func TestPlainOperationNoBugs(t *testing.T) {
	fs, _, _ := newSupervised(t, Config{})
	fd, err := fs.Create("/hello", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(fd, 0, 10)
	if err != nil || string(got) != "world" {
		t.Fatalf("ReadAt = (%q, %v)", got, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Recoveries != 0 || st.AppFailures != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.StablePoints != 1 {
		t.Errorf("StablePoints = %d, want 1", st.StablePoints)
	}
	if fs.LogLen() != 0 {
		t.Errorf("log not truncated at stable point: %d", fs.LogLen())
	}
}

// runAgainstModel drives the same trace into a supervised filesystem and the
// specification model (which has no bugs), comparing every outcome and the
// final state. With RAE this must be a perfect match even with bugs armed:
// the application never observes the faults.
func runAgainstModel(t *testing.T, fs *FS, sb *disklayout.Superblock, trace []*oplog.Op) (outcomeDiffs, stateDiffs []difftest.Discrepancy) {
	t.Helper()
	m := model.New(sb)
	for _, rec := range trace {
		oracle := rec.Clone()
		oracle.Errno, oracle.RetFD, oracle.RetIno, oracle.RetN = 0, 0, 0, 0
		_ = oplog.Apply(m, oracle)
		got := rec.Clone()
		got.Errno, got.RetFD, got.RetIno, got.RetN = 0, 0, 0, 0
		_ = oplog.Apply(fs, got)
		outcomeDiffs = append(outcomeDiffs, difftest.CompareOutcome(got, oracle)...)
	}
	gotState, err := difftest.DumpState(fs)
	if err != nil {
		t.Fatalf("dump supervised state: %v", err)
	}
	wantState, err := difftest.DumpState(m)
	if err != nil {
		t.Fatalf("dump model state: %v", err)
	}
	stateDiffs = difftest.CompareStates(gotState, wantState)
	return outcomeDiffs, stateDiffs
}

func trigger(kind faultinject.Consequence, op string, deterministic bool) *faultinject.Specimen {
	return &faultinject.Specimen{
		ID:            "spec-" + kind.String() + "-" + op,
		Class:         kind,
		Deterministic: deterministic,
		Prob:          1.0,
		Op:            op,
		Point:         "entry",
		PathSubstr:    "trigger",
	}
}

// TestRAEMasksDeterministicCrash is the headline behavior: a deterministic
// null-deref-style crash in create is masked; the application sees only
// successful outcomes identical to the bug-free specification.
func TestRAEMasksDeterministicCrash(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(trigger(faultinject.Crash, "create", true))
	fs, _, sb := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})

	var trace []*oplog.Op
	trace = append(trace, &oplog.Op{Kind: oplog.KMkdir, Path: "/d", Perm: 0o755})
	trace = append(trace, &oplog.Op{Kind: oplog.KCreate, Path: "/d/before", Perm: 0o644})
	trace = append(trace, &oplog.Op{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("pre-bug data")})
	trace = append(trace, &oplog.Op{Kind: oplog.KCreate, Path: "/d/trigger-file", Perm: 0o644})
	trace = append(trace, &oplog.Op{Kind: oplog.KWrite, FD: 1, Off: 0, Data: []byte("post-bug data")})
	trace = append(trace, &oplog.Op{Kind: oplog.KClose, FD: 0})
	trace = append(trace, &oplog.Op{Kind: oplog.KClose, FD: 1})
	trace = append(trace, &oplog.Op{Kind: oplog.KStatProbe, Path: "/d/trigger-file"})

	outcome, state := runAgainstModel(t, fs, sb, trace)
	for _, d := range outcome {
		t.Errorf("outcome: %s", d)
	}
	for _, d := range state {
		t.Errorf("state: %s", d)
	}
	st := fs.Stats()
	if st.Recoveries == 0 {
		t.Fatal("no recovery happened; the bug never fired?")
	}
	if st.PanicsCaught == 0 {
		t.Error("crash specimen did not panic")
	}
	if st.AppFailures != 0 {
		t.Errorf("application saw %d failures", st.AppFailures)
	}
	if len(reg.Fired()) == 0 {
		t.Error("specimen never fired")
	}
}

// TestRAEMasksEveryBugClass arms one specimen per Table 1 consequence class
// and checks recovery masks each (experiment E9).
func TestRAEMasksEveryBugClass(t *testing.T) {
	classes := []struct {
		name string
		spec *faultinject.Specimen
		cfg  func(*Config)
	}{
		{"deterministic-crash-mkdir", trigger(faultinject.Crash, "mkdir", true), nil},
		{"deterministic-crash-unlink", trigger(faultinject.Crash, "unlink", true), nil},
		{"deterministic-crash-rename", trigger(faultinject.Crash, "rename", true), nil},
		{"transient-crash-write", &faultinject.Specimen{
			ID: "transient-crash", Class: faultinject.Crash,
			Deterministic: false, Prob: 1.0, MaxFires: 1, Op: "writeat",
		}, nil},
		{"warn-escalated", &faultinject.Specimen{
			ID: "warn-bug", Class: faultinject.Warn,
			Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "trigger",
		}, func(c *Config) { c.EscalateWarns = true }},
		{"freeze-watchdog", &faultinject.Specimen{
			ID: "freeze-bug", Class: faultinject.Freeze,
			Deterministic: true, Op: "truncate", Point: "entry", PathSubstr: "trigger",
			FreezeFor: 80 * time.Millisecond, MaxFires: 2,
		}, func(c *Config) { c.Watchdog = 15 * time.Millisecond }},
		{"injected-eio", &faultinject.Specimen{
			ID: "eio-bug", Class: faultinject.ErrReturn,
			Deterministic: true, Op: "unlink", Point: "entry", PathSubstr: "trigger",
		}, nil},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			reg := faultinject.NewRegistry(7)
			reg.Arm(tc.spec)
			cfg := Config{Base: basefs.Options{Injector: reg}}
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			fs, _, sb := newSupervised(t, cfg)
			trace := []*oplog.Op{
				{Kind: oplog.KMkdir, Path: "/trigger-dir", Perm: 0o755},
				{Kind: oplog.KCreate, Path: "/trigger-dir/a", Perm: 0o644},
				{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("alpha")},
				{Kind: oplog.KCreate, Path: "/plain", Perm: 0o644},
				{Kind: oplog.KWrite, FD: 1, Off: 0, Data: []byte("beta")},
				{Kind: oplog.KTruncate, Path: "/trigger-dir/a", Size: 2},
				{Kind: oplog.KLink, Path: "/plain", Path2: "/trigger-link"},
				{Kind: oplog.KUnlink, Path: "/trigger-link"},
				{Kind: oplog.KRename, Path: "/trigger-dir/a", Path2: "/trigger-dir/b"},
				{Kind: oplog.KClose, FD: 0},
				{Kind: oplog.KClose, FD: 1},
				{Kind: oplog.KReadDirProbe, Path: "/trigger-dir"},
			}
			outcome, state := runAgainstModel(t, fs, sb, trace)
			for _, d := range outcome {
				t.Errorf("outcome: %s", d)
			}
			for _, d := range state {
				t.Errorf("state: %s", d)
			}
			st := fs.Stats()
			if len(reg.Fired()) == 0 {
				t.Fatal("specimen never fired; test exercised nothing")
			}
			if st.Recoveries == 0 {
				t.Error("no recovery despite armed specimen")
			}
			if st.AppFailures != 0 {
				t.Errorf("application saw %d failures; stats %+v", st.AppFailures, st)
			}
		})
	}
}

// TestRAEMasksSilentCorruptionAtSync: a NoCrash corruption specimen scribbles
// a block pointer; pre-persist validation catches it at Sync, and recovery
// reconstructs correct state from the log.
func TestRAEMasksSilentCorruptionAtSync(t *testing.T) {
	reg := faultinject.NewRegistry(3)
	reg.Arm(&faultinject.Specimen{
		ID: "silent-corrupt", Class: faultinject.SilentCorrupt,
		Deterministic: true, Op: "writeat", Point: "inode", MaxFires: 1,
	})
	fs, _, sb := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	trace := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/victim", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("clean data")},
		{Kind: oplog.KSync},
		{Kind: oplog.KClose, FD: 0},
		{Kind: oplog.KStatProbe, Path: "/victim"},
	}
	outcome, state := runAgainstModel(t, fs, sb, trace)
	for _, d := range outcome {
		t.Errorf("outcome: %s", d)
	}
	for _, d := range state {
		t.Errorf("state: %s", d)
	}
	st := fs.Stats()
	if st.Recoveries == 0 {
		t.Fatal("corruption was never detected")
	}
	if st.AppFailures != 0 {
		t.Errorf("application saw %d failures", st.AppFailures)
	}
	// The file's content must be intact after recovery + re-sync.
	fd, err := fs.Open("/victim")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt(fd, 0, 100)
	if err != nil || string(got) != "clean data" {
		t.Errorf("content = (%q, %v)", got, err)
	}
}

// TestRAERecoveryPreservesDescriptorsAcrossStablePoint: descriptors opened
// before a sync survive a later recovery via the fd snapshot + hand-off.
func TestRAERecoveryPreservesDescriptorsAcrossStablePoint(t *testing.T) {
	reg := faultinject.NewRegistry(11)
	reg.Arm(trigger(faultinject.Crash, "mkdir", true))
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	fd, err := fs.Create("/longlived", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // stable point with fd open
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 7, []byte(" and buffered")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/trigger", 0o755); err != nil { // crash + recovery
		t.Fatal(err)
	}
	if fs.Stats().Recoveries == 0 {
		t.Fatal("no recovery")
	}
	// The descriptor still works and sees both writes.
	got, err := fs.ReadAt(fd, 0, 100)
	if err != nil || string(got) != "durable and buffered" {
		t.Fatalf("post-recovery read = (%q, %v)", got, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRestartLosesStateButStaysUp: the baseline surfaces failures and
// invalidates descriptors, losing buffered updates.
func TestCrashRestartLosesStateButStaysUp(t *testing.T) {
	reg := faultinject.NewRegistry(5)
	reg.Arm(trigger(faultinject.Crash, "mkdir", true))
	fs, _, _ := newSupervised(t, Config{Mode: ModeCrashRestart, Base: basefs.Options{Injector: reg}})
	fd, _ := fs.Create("/f", 0o644)
	fs.WriteAt(fd, 0, []byte("buffered only"))
	err := fs.Mkdir("/trigger", 0o755)
	if !errors.Is(err, fserr.ErrIO) {
		t.Fatalf("crash-restart returned %v, want EIO", err)
	}
	st := fs.Stats()
	if st.AppFailures == 0 || st.FDsInvalidated == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Buffered file is gone (never synced), system still up.
	if _, err := fs.Open("/f"); !errors.Is(err, fserr.ErrNotExist) {
		t.Errorf("unsynced file after crash-restart: %v", err)
	}
	if _, err := fs.Create("/new", 0o644); err != nil {
		t.Errorf("system down after crash-restart: %v", err)
	}
}

// TestNaiveReplayRefiresDeterministicBug: Membrane-style replay re-executes
// the recorded sequence on the buggy base, so a deterministic bug in the
// recorded prefix re-fires on every retry and the baseline degrades.
func TestNaiveReplayRefiresDeterministicBug(t *testing.T) {
	reg := faultinject.NewRegistry(5)
	// Fires on every matching call from the second one on: the first create
	// of /trigger-x succeeds, a later re-execution... Simpler: deterministic
	// crash on the create of a specific path, AfterN=0 — the op never
	// completes on the base, so it is the in-flight op. To plant the bug in
	// the *recorded prefix*, use a specimen on write that fires from the
	// second write onward: the first write is recorded successfully, the
	// second faults, and replaying the recorded first write re-fires it.
	reg.Arm(&faultinject.Specimen{
		ID: "det-write", Class: faultinject.Crash,
		Deterministic: true, Op: "writeat", Point: "entry", AfterN: 1,
	})
	fs, _, _ := newSupervised(t, Config{Mode: ModeNaiveReplay, MaxReplayRetries: 3,
		Base: basefs.Options{Injector: reg}})
	fd, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Second write faults; naive replay re-executes create+write, and the
	// replayed write is match #2 for the (re-armed) specimen... the specimen
	// state persists across reboots (the bug is in the code), so the replay
	// write faults again.
	_, err = fs.WriteAt(fd, 5, []byte("second"))
	if !errors.Is(err, fserr.ErrIO) {
		t.Fatalf("naive replay returned %v, want degraded EIO", err)
	}
	st := fs.Stats()
	if st.Degradations == 0 {
		t.Errorf("naive replay did not degrade: %+v", st)
	}
}

// TestNaiveReplayHandlesTransientBug: with a fires-once transient fault and
// no open descriptors at the stable point, naive replay succeeds.
func TestNaiveReplayHandlesTransientBug(t *testing.T) {
	reg := faultinject.NewRegistry(5)
	reg.Arm(&faultinject.Specimen{
		ID: "transient", Class: faultinject.Crash,
		Deterministic: false, Prob: 1.0, MaxFires: 1, Op: "mkdir", PathSubstr: "trigger",
	})
	fs, _, _ := newSupervised(t, Config{Mode: ModeNaiveReplay, Base: basefs.Options{Injector: reg}})
	if err := fs.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/trigger-b", 0o755); err != nil {
		t.Fatalf("transient bug not recovered by replay: %v", err)
	}
	if _, err := fs.Stat("/a"); err != nil {
		t.Errorf("pre-fault state lost: %v", err)
	}
	if _, err := fs.Stat("/trigger-b"); err != nil {
		t.Errorf("in-flight op lost: %v", err)
	}
	if fs.Stats().AppFailures != 0 {
		t.Errorf("app failures: %+v", fs.Stats())
	}
}

// TestRAESurvivesWorkloadWithPeriodicBugs runs a full workload with a
// deterministic crash specimen firing periodically; every outcome and the
// final state must still match the specification.
func TestRAESurvivesWorkloadWithPeriodicBugs(t *testing.T) {
	reg := faultinject.NewRegistry(13)
	reg.Arm(&faultinject.Specimen{
		ID: "periodic-crash", Class: faultinject.Crash,
		Deterministic: false, Prob: 0.02, Op: "", Point: "entry",
	})
	fs, _, sb := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: 31, NumOps: 600, Superblock: sb, SyncEvery: 40,
	})
	outcome, state := runAgainstModel(t, fs, sb, trace)
	for i, d := range outcome {
		if i > 10 {
			break
		}
		t.Errorf("outcome: %s", d)
	}
	for i, d := range state {
		if i > 10 {
			break
		}
		t.Errorf("state: %s", d)
	}
	st := fs.Stats()
	if st.Recoveries == 0 {
		t.Fatal("probabilistic specimen never fired in 600 ops")
	}
	if st.AppFailures != 0 {
		t.Errorf("app saw %d failures across %d recoveries", st.AppFailures, st.Recoveries)
	}
	t.Logf("stats: recoveries=%d panics=%d replayed=%d downtime=%v",
		st.Recoveries, st.PanicsCaught, st.OpsReplayed, st.TotalDowntime)
}

// TestRecoveryPhasesRecorded checks the phase breakdown used by the
// recovery-latency experiment.
func TestRecoveryPhasesRecorded(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(trigger(faultinject.Crash, "create", true))
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	fd, _ := fs.Create("/pre", 0o644)
	fs.WriteAt(fd, 0, []byte("x"))
	if _, err := fs.Create("/trigger", 0o644); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if len(st.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(st.Phases))
	}
	ph := st.Phases[0]
	if ph.Total() <= 0 || ph.Reboot <= 0 || ph.Replay <= 0 {
		t.Errorf("phase breakdown = %+v", ph)
	}
}

// TestStablePointBoundsReplay: after sync, recovery replays only post-sync
// operations.
func TestStablePointBoundsReplay(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(trigger(faultinject.Crash, "rmdir", true))
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	for i := 0; i < 50; i++ {
		if err := fs.Mkdir("/d"+string(rune('A'+i%26))+string(rune('0'+i/26)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/after", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/trigger-me", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/trigger-me"); err != nil { // fires
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("recoveries = %d", st.Recoveries)
	}
	// Only the 2 post-sync mkdirs (plus the in-flight rmdir in autonomous
	// mode) should have been replayed, not the 50 pre-sync ones.
	if st.OpsReplayed > 5 {
		t.Errorf("OpsReplayed = %d; stable point not honored", st.OpsReplayed)
	}
}
