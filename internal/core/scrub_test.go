package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/basefs"
	"repro/internal/faultinject"
)

// TestScopedFsckAfterVerifiedRecovery: the first recovery has no verified
// baseline and checks the whole image; it establishes the baseline, so the
// second recovery's check is scoped to the blocks touched since.
func TestScopedFsckAfterVerifiedRecovery(t *testing.T) {
	reg := faultinject.NewRegistry(51)
	reg.Arm(&faultinject.Specimen{
		ID: "boom1", Class: faultinject.Crash, Deterministic: true,
		Op: "mkdir", Point: "entry", PathSubstr: "boom1", MaxFires: 1,
	})
	reg.Arm(&faultinject.Specimen{
		ID: "boom2", Class: faultinject.Crash, Deterministic: true,
		Op: "mkdir", Point: "entry", PathSubstr: "boom2", MaxFires: 1,
	})
	fs, _, _ := newSupervised(t, Config{
		Base:        basefs.Options{Injector: reg},
		FsckWorkers: 4,
	})
	for i := 0; i < 5; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/pre-%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir("/boom1-dir", 0o755); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 || st.FsckFull != 1 || st.FsckScoped != 0 {
		t.Fatalf("after cold fault: recoveries=%d full=%d scoped=%d, want 1/1/0",
			st.Recoveries, st.FsckFull, st.FsckScoped)
	}
	// Writes between the faults: the second fault's blast radius. The sync
	// pushes them to the device — without it the on-disk generation is
	// unchanged and the second recovery reuses the warm shadow, skipping the
	// check entirely.
	for i := 0; i < 5; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/mid-%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/boom2-dir", 0o755); err != nil {
		t.Fatal(err)
	}
	st = fs.Stats()
	if st.Recoveries != 2 || st.FsckFull != 1 || st.FsckScoped != 1 {
		t.Fatalf("after warm fault: recoveries=%d full=%d scoped=%d, want 2/1/1",
			st.Recoveries, st.FsckFull, st.FsckScoped)
	}
	if st.Degradations != 0 || st.AppFailures != 0 {
		t.Errorf("degradations=%d appFailures=%d, want 0/0", st.Degradations, st.AppFailures)
	}
	// Both detonating directories exist: the ops were reconstructed.
	for _, p := range []string{"/boom1-dir", "/boom2-dir", "/pre-0", "/mid-4"} {
		if _, err := fs.Stat(p); err != nil {
			t.Errorf("Stat(%s): %v", p, err)
		}
	}
}

// TestDisableScopedFsckForcesFullChecks is the knob's contract: every
// recovery verifies the whole image.
func TestDisableScopedFsckForcesFullChecks(t *testing.T) {
	reg := faultinject.NewRegistry(52)
	reg.Arm(&faultinject.Specimen{
		ID: "boom", Class: faultinject.Crash, Deterministic: true,
		Op: "mkdir", Point: "entry", PathSubstr: "boom", MaxFires: 2,
	})
	fs, _, _ := newSupervised(t, Config{
		Base:              basefs.Options{Injector: reg},
		DisableScopedFsck: true,
	})
	for i := 0; i < 2; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/boom-%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir(fmt.Sprintf("/between-%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
		// Push writes to the device so the next fault cannot warm-reuse.
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Stats()
	if st.Recoveries != 2 || st.FsckFull != 2 || st.FsckScoped != 0 {
		t.Errorf("recoveries=%d full=%d scoped=%d, want 2/2/0", st.Recoveries, st.FsckFull, st.FsckScoped)
	}
}

// TestScrubTripsRecoveryOncePerEpisode: out-of-band durable corruption is
// detected by the background scrubber, which proactively trips the recovery
// fence — but only once per corruption episode. Damage no recovery can
// repair must not cause a recovery storm, and nothing is charged to the
// application.
func TestScrubTripsRecoveryOncePerEpisode(t *testing.T) {
	fs, dev, sb := newSupervised(t, Config{
		ScrubInterval: 2 * time.Millisecond,
		ScrubWorkers:  2,
	})
	for i := 0; i < 5; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/d-%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Out-of-band damage no application operation will ever touch: scribble
	// on the LAST inode-table block — a region the workload never wrote, so
	// the journal's committed overlay cannot mask it (corrupting a recently
	// synced block would be healed by replay, which is correct behavior and
	// a different test). The garbage record with its bitmap bit clear is a
	// ghost: unambiguous durable corruption nothing can repair from.
	if err := dev.CorruptBlock(sb.InodeTableStart+sb.InodeTableLen-1, 0, 0xFF); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := fs.Stats(); st.ScrubCorrupt >= 3 && st.Recoveries >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := fs.Stats()
	if st.ScrubCorrupt < 3 {
		t.Fatalf("scrubber kept missing durable corruption: %d corrupt passes", st.ScrubCorrupt)
	}
	if st.Recoveries != 1 {
		t.Errorf("recoveries = %d across %d corrupt passes, want exactly 1 (episode gating)",
			st.Recoveries, st.ScrubCorrupt)
	}
	if st.AppFailures != 0 {
		t.Errorf("appFailures = %d: scrub-tripped recovery charged the application", st.AppFailures)
	}
	if st.Degradations == 0 {
		t.Error("unrepairable corruption did not degrade")
	}
}

// TestScrubBaselineEnablesScopedRecovery: a clean background pass verifies
// the image, so the very first fault recovery can already run a scoped
// check — no cold full-image check required.
func TestScrubBaselineEnablesScopedRecovery(t *testing.T) {
	reg := faultinject.NewRegistry(53)
	reg.Arm(&faultinject.Specimen{
		ID: "boom", Class: faultinject.Crash, Deterministic: true,
		Op: "mkdir", Point: "entry", PathSubstr: "boom", MaxFires: 1,
	})
	fs, _, _ := newSupervised(t, Config{
		Base:          basefs.Options{Injector: reg},
		ScrubInterval: 2 * time.Millisecond,
	})
	for i := 0; i < 5; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/d-%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce, then wait for a clean pass over the post-write image. Passes
	// completed after the last write carry the current generation, so the
	// baseline verdict sticks.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	base := fs.Stats().ScrubPasses
	deadline := time.Now().Add(5 * time.Second)
	for fs.Stats().ScrubPasses < base+2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if fs.Stats().ScrubPasses < base+2 {
		t.Fatal("scrubber made no progress")
	}
	if err := fs.Mkdir("/boom-dir", 0o755); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Recoveries != 1 || st.FsckScoped != 1 || st.FsckFull != 0 {
		t.Errorf("recoveries=%d scoped=%d full=%d, want 1/1/0 (scrub baseline unused)",
			st.Recoveries, st.FsckScoped, st.FsckFull)
	}
	if _, err := fs.Stat("/boom-dir"); err != nil {
		t.Errorf("Stat(/boom-dir): %v", err)
	}
}

// TestScrubConcurrentWithFaultsRace hammers the scrubber against the fault-
// recovery loop: background passes freezing views and refreshing the
// baseline while application goroutines detonate crashes and recover. Run
// under -race in CI; the invariant is the usual one — no failure ever
// reaches the application.
func TestScrubConcurrentWithFaultsRace(t *testing.T) {
	reg := faultinject.NewRegistry(54)
	reg.Arm(&faultinject.Specimen{
		ID: "crash-burst", Class: faultinject.Crash, Deterministic: true,
		Op: "mkdir", Point: "entry", PathSubstr: "trigger", MaxFires: 6,
	})
	fs, _, _ := newSupervised(t, Config{
		Base:          basefs.Options{Injector: reg},
		ScrubInterval: time.Millisecond,
		ScrubWorkers:  2,
	})
	const workers, perWorker = 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := fmt.Sprintf("/d-%d-%d", w, i)
				if i%7 == 3 {
					path = fmt.Sprintf("/trigger-%d-%d", w, i)
				}
				if err := fs.Mkdir(path, 0o755); err != nil {
					errs <- fmt.Errorf("mkdir %s: %w", path, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := fs.Stats()
	if st.AppFailures != 0 {
		t.Errorf("appFailures = %d, want 0", st.AppFailures)
	}
	if st.Recoveries == 0 {
		t.Error("burst never triggered a recovery")
	}
	if st.Degradations != 0 {
		t.Errorf("degradations = %d, want 0", st.Degradations)
	}
	if fs.Scrubber() == nil || fs.Scrubber().Passes() == 0 {
		t.Error("scrubber made no passes during the hammer")
	}
}
