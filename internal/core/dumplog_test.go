package core

import (
	"path/filepath"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/fsapi"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
)

// TestDumpLogOfflineReplay is the cmd/shadowreplay flow end to end: run a
// session on a file-backed image, sync (stable point), run more operations,
// dump the log, crash — then replay the dump offline against the image and
// apply the shadow's update, recovering the post-crash state.
func TestDumpLogOfflineReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	dev, err := blockdev.OpenFile(path, 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if _, err := mkfs.Format(dev, mkfs.Options{NumInodes: 256, JournalBlocks: 32}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := fs.Create("/durable", 0o644)
	fs.WriteAt(fd, 0, []byte("synced"))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Post-stable-point activity that only the log knows about.
	fd2, _ := fs.Create("/buffered", 0o644)
	fs.WriteAt(fd2, 0, []byte("only in the log"))
	fs.Close(fd2)
	dump := fs.DumpLog()
	fs.Kill() // crash: buffered state is gone from disk

	// Offline: decode, replay on the shadow over the crashed image.
	ops, fds, clock, err := oplog.DecodeSequence(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("dump carries no operations")
	}
	if _, ok := fds[fd]; !ok {
		t.Fatalf("stable-point fd table missing fd %d: %v", fd, fds)
	}
	if _, _, err := mkfs.Recover(dev); err != nil {
		t.Fatal(err)
	}
	sh, err := shadowfs.New(dev, shadowfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sh.Replay(shadowfs.ReplayInput{
		Ops: ops, BaseFDs: fds, StartClock: clock, StopOnDiscrepancy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discrepancies) != 0 {
		t.Fatalf("discrepancies: %v", res.Discrepancies)
	}
	// Apply the update to the image, as shadowreplay -apply does.
	for _, blk := range res.Update.SortedBlocks() {
		if err := dev.WriteBlock(blk, res.Update.Blocks[blk]); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	// The recovered image now holds the buffered file.
	fs2, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Kill()
	rfd, err := fs2.Open("/buffered")
	if err != nil {
		t.Fatalf("buffered file not recovered: %v", err)
	}
	got, _ := fs2.ReadAt(rfd, 0, 100)
	if string(got) != "only in the log" {
		t.Errorf("recovered content = %q", got)
	}
	var _ fsapi.FD = rfd
}
