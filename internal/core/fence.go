package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/blockdev"
	"repro/internal/fserr"
)

// fencedDevice is the IO fence between a base instance and the device. A
// contained reboot "must reset the interactions with these components"
// (§4.1): before mounting the replacement instance, the supervisor raises
// the fence on the old instance's handle, so an operation abandoned by the
// watchdog (a frozen sync that wakes up mid-recovery, for example) can
// never write to the device the shadow and the new base are working from.
type fencedDevice struct {
	dev blockdev.Device
	// gen is the supervisor's device write generation, shared by every fence
	// the supervisor creates: each write through any base instance bumps it.
	// The warm replayer's validity check compares it against the value
	// captured when the replayer was retained — any base write since (journal
	// commit, checkpoint, cache eviction) changes bytes under the retained
	// overlay and invalidates it. May be nil (tests).
	gen *atomic.Uint64
	// touched accumulates the written block numbers for the region-scoped
	// recovery check: because every base-instance write funnels through a
	// fence, this set is a superset of everything that changed on the device
	// since it was last drained. May be nil (tests).
	touched *touchedSet
	off     atomic.Bool
}

var _ blockdev.Device = (*fencedDevice)(nil)

func newFence(dev blockdev.Device, gen *atomic.Uint64, touched *touchedSet) *fencedDevice {
	return &fencedDevice{dev: dev, gen: gen, touched: touched}
}

// raise cuts the old instance off from the device.
func (f *fencedDevice) raise() { f.off.Store(true) }

func (f *fencedDevice) guard(what string) error {
	if f.off.Load() {
		return fmt.Errorf("core: %s through fenced device handle: %w", what, fserr.ErrIO)
	}
	return nil
}

// ReadBlock implements blockdev.Device.
func (f *fencedDevice) ReadBlock(blk uint32) ([]byte, error) {
	if err := f.guard("read"); err != nil {
		return nil, err
	}
	return f.dev.ReadBlock(blk)
}

// WriteBlock implements blockdev.Device. The generation bumps and the
// touched set records before the write reaches the device, so a failed
// write can only over-invalidate the warm replayer and over-scope the next
// check, never the unsound direction.
func (f *fencedDevice) WriteBlock(blk uint32, data []byte) error {
	if err := f.guard("write"); err != nil {
		return err
	}
	if f.gen != nil {
		f.gen.Add(1)
	}
	if f.touched != nil {
		f.touched.record(blk)
	}
	return f.dev.WriteBlock(blk, data)
}

// NumBlocks implements blockdev.Device.
func (f *fencedDevice) NumBlocks() uint32 { return f.dev.NumBlocks() }

// Flush implements blockdev.Device.
func (f *fencedDevice) Flush() error {
	if err := f.guard("flush"); err != nil {
		return err
	}
	return f.dev.Flush()
}
