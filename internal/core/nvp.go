package core

import (
	"fmt"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/shadowfs"
)

// NVP3 is the classic N-version-programming baseline the paper contrasts
// RAE against (§2.1): three independently developed versions of the
// filesystem — the base, the shadow run as a primary, and the specification
// model — execute every operation, and the result is decided by majority
// vote. It demonstrates NVP's two documented drawbacks: "maintaining and
// executing multiple versions (often, at least three) incurs excessive
// overhead", and a panic in one version is masked only as long as the other
// two agree.
//
// Simplifications relative to a production NVP deployment (documented in
// DESIGN.md): the outvoted minority version is not resynchronized — after
// its first divergence its votes are ignored — and the versions run
// sequentially rather than on independent nodes, which makes the measured
// ~3x common-case cost a lower bound.
type NVP3 struct {
	versions [3]fsapi.FS
	name     [3]string
	// dead marks versions excluded after a panic or divergence.
	dead  [3]bool
	stats NVPStats
}

// NVPStats counts the voting baseline's activity.
type NVPStats struct {
	Ops          int64
	Disagreement int64 // votes that were not unanimous
	PanicsMasked int64
	VersionsDead int
}

// NewNVP3 builds the three versions over three *independent* images of the
// same geometry (NVP executes full replicas, which is part of its cost).
func NewNVP3(blocks uint32, baseOpts basefs.Options) (*NVP3, error) {
	mkImage := func() (blockdev.Device, *disklayout.Superblock, error) {
		dev := blockdev.NewMem(blocks)
		sb, err := mkfs.Format(dev, mkfs.Options{})
		return dev, sb, err
	}
	baseDev, _, err := mkImage()
	if err != nil {
		return nil, err
	}
	base, err := basefs.Mount(baseDev, baseOpts)
	if err != nil {
		return nil, err
	}
	shadowDev, sb, err := mkImage()
	if err != nil {
		return nil, err
	}
	sh, err := shadowfs.New(shadowDev, shadowfs.Options{SkipFsck: true})
	if err != nil {
		return nil, err
	}
	n := &NVP3{}
	n.versions = [3]fsapi.FS{base, sh, model.New(sb)}
	n.name = [3]string{"base", "shadow", "model"}
	return n, nil
}

// Stats returns the voting counters.
func (n *NVP3) Stats() NVPStats { return n.stats }

// vote describes one version's outcome for an operation.
type vote struct {
	errno, n int
	fd       fsapi.FD
	ino      uint32
	panicked bool
}

func (v vote) key() string {
	return fmt.Sprintf("%d/%d/%d/%d/%v", v.errno, v.n, v.fd, v.ino, v.panicked)
}

// Do executes the operation on every live version and fills op's outcome
// with the majority result. It returns fserr.ErrIO when no majority exists
// (fewer than two agreeing live versions).
func (n *NVP3) Do(op *oplog.Op) error {
	n.stats.Ops++
	var votes [3]vote
	for i, fs := range n.versions {
		if n.dead[i] {
			votes[i] = vote{panicked: true}
			continue
		}
		cp := op.Clone()
		cp.Errno, cp.RetFD, cp.RetIno, cp.RetN = 0, 0, 0, 0
		panicked := func() (p bool) {
			defer func() {
				if recover() != nil {
					p = true
				}
			}()
			_ = oplog.Apply(fs, cp)
			return false
		}()
		if panicked {
			n.dead[i] = true
			n.stats.PanicsMasked++
			n.stats.VersionsDead++
			votes[i] = vote{panicked: true}
			continue
		}
		votes[i] = vote{errno: cp.Errno, n: cp.RetN, fd: cp.RetFD, ino: cp.RetIno}
		if i == 0 || (n.dead[0] && i == 1) {
			// Remember a representative full outcome for the winner check.
			op.Errno, op.RetN, op.RetFD, op.RetIno = cp.Errno, cp.RetN, cp.RetFD, cp.RetIno
			op.RetData = cp.RetData
		}
	}
	// Majority vote over live versions.
	counts := map[string][]int{}
	for i := range votes {
		if n.dead[i] {
			continue
		}
		k := votes[i].key()
		counts[k] = append(counts[k], i)
	}
	var winner []int
	for _, idxs := range counts {
		if len(idxs) > len(winner) {
			winner = idxs
		}
	}
	if len(counts) > 1 {
		n.stats.Disagreement++
		// Versions outvoted by the majority are diverged and excluded.
		if len(winner) >= 2 {
			for i := range votes {
				if n.dead[i] {
					continue
				}
				if votes[i].key() != votes[winner[0]].key() {
					n.dead[i] = true
					n.stats.VersionsDead++
				}
			}
		}
	}
	if len(winner) < 2 {
		op.Errno = fserr.Errno(fserr.ErrIO)
		return fserr.ErrIO
	}
	w := votes[winner[0]]
	op.Errno, op.RetN, op.RetFD, op.RetIno = w.errno, w.n, w.fd, w.ino
	return op.Err()
}
