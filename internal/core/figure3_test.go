package core

import (
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
)

// TestFigure3Scenario reenacts the paper's Figure 3 end to end:
//
//	S0 --Op0..Op3--> S4 --Op4--> error detected
//
// Op0..Op3 complete and their effects are visible to the application (Op3's
// return value has been consumed); Op4 triggers the error in the base.
// The three problems must be solved exactly as annotated:
//
//	① contained reboot   — the machine (process) survives; erroneous
//	                       in-memory state is discarded;
//	② state reconstruction — essential states (on-disk structures, file
//	                       descriptor numbers, inode numbers) are identical
//	                       for completed operations, and the in-flight Op4
//	                       completes;
//	③ error avoidance    — the deterministic error's manifestation path is
//	                       circumvented (the base never re-executes the
//	                       sequence), so S5 is reached.
//
// Unessential state (cache contents) is explicitly allowed to differ.
func TestFigure3Scenario(t *testing.T) {
	reg := faultinject.NewRegistry(73)
	reg.Arm(&faultinject.Specimen{
		ID: "fig3-op4", Class: faultinject.Crash,
		Deterministic: true, Op: "create", Point: "alloc", PathSubstr: "op4",
	})
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})

	// S0: the durable starting state.
	if err := fs.Mkdir("/dir", 0o755); err != nil { // Op0
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Op1..Op3: completed operations whose outcomes the application holds.
	fd1, err := fs.Create("/dir/op1", 0o644) // Op1: the app keeps this descriptor
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteAt(fd1, 0, []byte("op2 bytes")); err != nil { // Op2
		t.Fatal(err)
	}
	st3, err := fs.Stat("/dir/op1") // Op3: the app consumed this inode number
	if err != nil {
		t.Fatal(err)
	}
	// Non-essential state before the error: warm caches.
	bufHitsBefore, _, _, _, dentHitsBefore, _ := fs.Base().CacheStats()
	_ = bufHitsBefore
	_ = dentHitsBefore

	// Op4: triggers a deterministic crash mid-operation (after allocation).
	fd4, err := fs.Create("/dir/op4", 0o644)
	if err != nil { // ③: the app must not see the error
		t.Fatalf("Op4 surfaced the error: %v", err)
	}
	if fs.Stats().Recoveries != 1 {
		t.Fatal("① no contained reboot happened")
	}
	if fs.Stats().AppFailures != 0 {
		t.Fatal("① the error propagated to the application")
	}

	// ② Essential state: Op1's descriptor still works and reads Op2's bytes.
	got, err := fs.ReadAt(fd1, 0, 100)
	if err != nil || string(got) != "op2 bytes" {
		t.Fatalf("completed ops' effects lost: (%q, %v)", got, err)
	}
	// ② Essential state: Op3's consumed inode number still names the file.
	st, err := fs.Stat("/dir/op1")
	if err != nil || st.Ino != st3.Ino {
		t.Fatalf("inode number changed across recovery: %d -> %d", st3.Ino, st.Ino)
	}
	// ② Op4 completed: its file exists and its descriptor works.
	if _, err := fs.WriteAt(fd4, 0, []byte("op4 completes")); err != nil {
		t.Fatalf("in-flight op's descriptor unusable: %v", err)
	}

	// Unessential state may differ: the rebooted base starts with cold
	// caches (hit counters reset with the new instance).
	bufHitsAfter, _, _, _, _, _ := fs.Base().CacheStats()
	if bufHitsAfter > bufHitsBefore {
		t.Log("note: cache counters did not reset; acceptable but unexpected")
	}

	// S5 and beyond: the system keeps running; the deterministic bug keeps
	// firing on matching paths and keeps being masked.
	if _, err := fs.Create("/dir/op4-again", 0o644); err != nil {
		t.Fatalf("second firing not masked: %v", err)
	}
	if fs.Stats().Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2", fs.Stats().Recoveries)
	}
	if err := fs.Close(fd1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd4); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
}
