package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/basefs"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// fault classifies one detected runtime error (§2: "all errors that can be
// detected are handled by the shadow").
type fault struct {
	// kind is "panic", "warn", "freeze", "result", or "scrub".
	kind string
	// err carries the result error or the recovered panic value.
	err error
	// external marks a fault not tied to any application operation (a scrub
	// trip): no app failure is counted on degrade, and the recovery takes
	// the cold path with a full check — the whole point is to re-examine
	// the image, which warm resume and scoped checks both skip.
	external bool
}

func (f *fault) String() string { return fmt.Sprintf("%s: %v", f.kind, f.err) }

// warnCounter is shared with every base instance the supervisor mounts.
type warnCounter struct {
	n    atomic.Int64
	next func(basefs.Warning)
}

// mountBase mounts a fresh base instance behind a new IO fence, wired to
// the supervisor's WARN counter, pre-persist barrier, and the sync-round
// hooks that drive log truncation.
func (r *FS) mountBase() (*basefs.FS, *fencedDevice, error) {
	opts := r.cfg.Base
	if b := r.cacheBudget.Load(); b > 0 {
		// A rebalanced cache quota outlives the instance it was applied to:
		// contained reboots mount with the current quota, not the configured
		// default.
		opts.CacheBlocks = int(b)
	}
	opts.OnWarn = func(w basefs.Warning) {
		r.warns.n.Add(1)
		if r.warns.next != nil {
			r.warns.next(w)
		}
	}
	// Sync-round bracket (see DESIGN.md "stable points under concurrency"):
	// ns is held from the watermark read through the end of the round's
	// dirty snapshot. Namespace ops hold ns across execute+append, so any op
	// the snapshot includes was appended before the watermark — truncating
	// at the watermark after the round persists can neither lose an op nor
	// leave an already-durable namespace op to be double-replayed. Writes
	// are not under ns; a write caught by the snapshot but logged past the
	// watermark replays idempotently. The hooks fire on every sync round,
	// including rounds led by a different goroutine's coalesced fsync.
	//
	// The descriptor table and clock are captured WITH the watermark, under
	// ns: they must describe the state as of the watermark, and creates or
	// closes running concurrently with the round's IO phases would otherwise
	// leak into the stable point while their ops stay in the log.
	var self atomic.Pointer[basefs.FS]
	opts.PreSnapshot = func() {
		r.ns.Lock()
		if base := self.Load(); base != nil {
			r.roundStable.Store(&roundStable{
				base:  base,
				wm:    r.log.Watermark(),
				fds:   base.OpenFDs(),
				clock: base.Clock(),
			})
		}
	}
	opts.PostSnapshot = func() { r.ns.Unlock() }
	opts.OnSyncDurable = func() {
		// A round completing on an abandoned instance (a frozen sync that
		// woke after recovery replaced the base) must not move the stable
		// point: its snapshot no longer corresponds to the live log. The
		// provenance check covers both directions — a dead round consuming a
		// live capture and a live round consuming a dead one.
		base := self.Load()
		rs := r.roundStable.Load()
		if base == nil || rs == nil || rs.base != base || r.base.Load() != base {
			return
		}
		r.log.StableAt(rs.wm, rs.fds, rs.clock)
		r.cnt.stablePoints.Add(1)
	}
	if r.cfg.EscalateWarns {
		// Detection-before-persist: if an escalated WARN has been emitted
		// that no recovery has consumed yet, veto the sync's write-out so the
		// disk stays at the previous stable point and recovery replays from
		// it.
		opts.PrePersist = func() error {
			if r.warns.n.Load() > r.warnsHandled.Load() {
				return fmt.Errorf("core: escalated WARN pending before persist: %w", fserr.ErrCorrupt)
			}
			return nil
		}
	}
	fence := newFence(r.dev, &r.devGen, r.touched)
	base, err := basefs.Mount(fence, opts)
	if err != nil {
		return nil, nil, err
	}
	self.Store(base)
	return base, fence, nil
}

// capture runs f under the supervisor's full detection envelope: panics are
// contained, WARN emission is observed, results are classified, and the
// watchdog bounds execution time. It returns nil when the operation
// completed without a detectable error (including ordinary user-level error
// returns, which are legitimate outcomes). It is safe to call from any
// number of goroutines; a WARN emitted by a concurrent operation may be
// attributed to this one, which at worst triggers one recovery the other
// goroutine would have triggered anyway.
func (r *FS) capture(f func() error) *fault {
	warnsBefore := r.warns.n.Load()

	type outcome struct {
		err      error
		panicked bool
		pval     any
	}
	run := func() (out outcome) {
		defer func() {
			if p := recover(); p != nil {
				out.panicked = true
				out.pval = p
			}
		}()
		out.err = f()
		return out
	}

	var out outcome
	if r.cfg.Watchdog > 0 {
		ch := make(chan outcome, 1)
		go func() { ch <- run() }()
		select {
		case out = <-ch:
		case <-time.After(r.cfg.Watchdog):
			r.cnt.freezes.Add(1)
			r.tel.Event("freeze", "operation exceeded watchdog %v", r.cfg.Watchdog)
			return &fault{kind: "freeze", err: fmt.Errorf("core: operation exceeded watchdog %v: %w",
				r.cfg.Watchdog, fserr.ErrIO)}
		}
	} else {
		out = run()
	}

	if out.panicked {
		r.cnt.panicsCaught.Add(1)
		r.tel.Event("panic", "contained panic: %v", out.pval)
		return &fault{kind: "panic", err: fmt.Errorf("core: contained panic: %v", out.pval)}
	}
	if r.cfg.EscalateWarns && r.warns.n.Load() > warnsBefore {
		r.cnt.warnsEscalated.Add(1)
		r.tel.Event("warn-escalated", "WARN(s) during operation escalated to recovery")
		return &fault{kind: "warn", err: fmt.Errorf("core: WARN escalated to recovery")}
	}
	if fserr.IsFault(out.err) {
		r.cnt.faultResults.Add(1)
		r.tel.Event("fault-result", "operation returned fault: %v", out.err)
		return &fault{kind: "result", err: out.err}
	}
	return nil
}

// recoverExclusive closes the gate (draining every in-flight operation),
// checks that no other goroutine recovered since genAtFault was sampled,
// and runs recovery. It returns false when the fault was superseded — the
// base instance the op faulted on is already gone — in which case the
// caller retries against the recovered base.
func (r *FS) recoverExclusive(flt *fault, inflight *oplog.Op, genAtFault uint64) bool {
	r.gate.close()
	defer r.gate.open()
	if r.gen.Load() != genAtFault {
		return false
	}
	r.recoverFrom(flt, inflight)
	r.gen.Add(1)
	return true
}

// do executes one mutating operation with recording and recovery. The op's
// outcome fields are filled either by the base (common case) or by
// recovery. An operation that faults while another goroutine's recovery is
// in flight retries against the recovered base: its failed attempt was
// never recorded and the faulty instance's in-memory state is discarded
// wholesale, so the retry is indistinguishable from a fresh call.
func (r *FS) do(op *oplog.Op) {
	r.cnt.opsExecuted.Add(1)
	for {
		si := r.gate.enter()
		gen := r.gen.Load()
		base := r.base.Load() // snapshot: an abandoned frozen goroutine must
		// keep using the instance it started on, not the one recovery installs
		unlock := r.lockRecord(op)
		// Execute on a shallow copy: if the watchdog abandons a frozen
		// operation, the stuck goroutine keeps mutating only the copy's
		// outcome fields, never the op whose outcome recovery decides. The
		// payload is shared — it is private to the supervisor (copied at the
		// facade) and the base only reads it.
		attempt := *op
		flt := r.capture(func() error { return oplog.Apply(base, &attempt) })
		if flt == nil {
			op.Errno, op.RetFD, op.RetIno, op.RetN = attempt.Errno, attempt.RetFD, attempt.RetIno, attempt.RetN
			op.RetData = attempt.RetData
			r.afterSuccess(op)
			unlock()
			r.gate.exit(si)
			return
		}
		unlock()
		r.gate.exit(si)
		if r.recoverExclusive(flt, op, gen) {
			return
		}
	}
}

// doSync executes a sync/fsync. All stable-point bookkeeping — watermark
// capture under ns, truncation after the round persists — happens in the
// sync-round hooks (see mountBase), driven by the base's round protocol:
// concurrent syncs coalesce onto shared rounds, and every durable round is
// a stable point regardless of which caller's goroutine led it.
func (r *FS) doSync(op *oplog.Op) {
	r.cnt.opsExecuted.Add(1)
	for {
		si := r.gate.enter()
		gen := r.gen.Load()
		base := r.base.Load()
		attempt := *op
		flt := r.capture(func() error { return oplog.Apply(base, &attempt) })
		if flt == nil {
			op.Errno = attempt.Errno
			r.gate.exit(si)
			return
		}
		r.gate.exit(si)
		if r.recoverExclusive(flt, op, gen) {
			return
		}
	}
}

// runProbe runs one unrecorded read under the gate with fault recovery.
// exec executes against the given base instance and returns the captured
// fault, or nil. On a fault the probe recovers (op, which may be nil,
// receives the shadow's answer) or — when another goroutine's recovery
// superseded it — retries exec against the recovered base. Returns whether
// a recovery decided the outcome.
func (r *FS) runProbe(op *oplog.Op, exec func(base *basefs.FS) *fault) (recovered bool) {
	for {
		si := r.gate.enter()
		gen := r.gen.Load()
		base := r.base.Load()
		flt := exec(base)
		r.gate.exit(si)
		if flt == nil {
			return false
		}
		if r.recoverExclusive(flt, op, gen) {
			return true
		}
	}
}

// afterSuccess records a completed operation. Syncs are never appended to
// the log (the shadow does not re-execute them), and their stable-point
// bookkeeping already ran inside the round via the OnSyncDurable hook —
// including on the recovery paths that re-run a sync exclusively.
func (r *FS) afterSuccess(op *oplog.Op) {
	if op.Kind == oplog.KSync || op.Kind == oplog.KFsync {
		return
	}
	if op.Kind.Mutating() {
		r.log.Append(op)
		r.cnt.opsRecorded.Add(1)
	}
}

// withInjectionDisabled runs supervisor support code with the bug registry
// gated off, so a deterministic specimen cannot re-fire inside the recovery
// machinery itself (the error-avoidance guarantee of §2.2 applied to the
// supervisor's own re-reads).
func (r *FS) withInjectionDisabled(f func()) {
	if inj := r.cfg.Base.Injector; inj != nil {
		inj.SetEnabled(false)
		defer inj.SetEnabled(true)
	}
	f()
}
