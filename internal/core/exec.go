package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/basefs"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// fault classifies one detected runtime error (§2: "all errors that can be
// detected are handled by the shadow").
type fault struct {
	// kind is "panic", "warn", "freeze", or "result".
	kind string
	// err carries the result error or the recovered panic value.
	err error
}

func (f *fault) String() string { return fmt.Sprintf("%s: %v", f.kind, f.err) }

// warnCounter is shared with every base instance the supervisor mounts.
type warnCounter struct {
	n    atomic.Int64
	next func(basefs.Warning)
}

// mountBase mounts a fresh base instance behind a new IO fence, wired to
// the supervisor's WARN counter and pre-persist barrier.
func (r *FS) mountBase() (*basefs.FS, *fencedDevice, error) {
	opts := r.cfg.Base
	opts.OnWarn = func(w basefs.Warning) {
		r.warns.n.Add(1)
		if r.warns.next != nil {
			r.warns.next(w)
		}
	}
	if r.cfg.EscalateWarns {
		// Detection-before-persist: if an escalated WARN was emitted during
		// the current operation, veto the sync's write-out so the disk stays
		// at the previous stable point and recovery replays from it.
		opts.PrePersist = func() error {
			if r.warns.n.Load() > r.opStartWarns.Load() {
				return fmt.Errorf("core: escalated WARN pending before persist: %w", fserr.ErrCorrupt)
			}
			return nil
		}
	}
	fence := newFence(r.dev)
	base, err := basefs.Mount(fence, opts)
	if err != nil {
		return nil, nil, err
	}
	return base, fence, nil
}

// capture runs f under the supervisor's full detection envelope: panics are
// contained, WARN emission is observed, results are classified, and the
// watchdog bounds execution time. It returns nil when the operation
// completed without a detectable error (including ordinary user-level error
// returns, which are legitimate outcomes).
func (r *FS) capture(f func() error) *fault {
	warnsBefore := r.warns.n.Load()
	r.opStartWarns.Store(warnsBefore)

	type outcome struct {
		err      error
		panicked bool
		pval     any
	}
	run := func() (out outcome) {
		defer func() {
			if p := recover(); p != nil {
				out.panicked = true
				out.pval = p
			}
		}()
		out.err = f()
		return out
	}

	var out outcome
	if r.cfg.Watchdog > 0 {
		ch := make(chan outcome, 1)
		go func() { ch <- run() }()
		select {
		case out = <-ch:
		case <-time.After(r.cfg.Watchdog):
			r.stats.Freezes++
			r.tel.Event("freeze", "operation exceeded watchdog %v", r.cfg.Watchdog)
			return &fault{kind: "freeze", err: fmt.Errorf("core: operation exceeded watchdog %v: %w",
				r.cfg.Watchdog, fserr.ErrIO)}
		}
	} else {
		out = run()
	}

	if out.panicked {
		r.stats.PanicsCaught++
		r.tel.Event("panic", "contained panic: %v", out.pval)
		return &fault{kind: "panic", err: fmt.Errorf("core: contained panic: %v", out.pval)}
	}
	if delta := r.warns.n.Load() - warnsBefore; delta > 0 {
		r.stats.WarnsSeen += delta
		if r.cfg.EscalateWarns {
			r.stats.WarnsEscalated++
			r.tel.Event("warn-escalated", "%d WARN(s) during operation escalated to recovery", delta)
			return &fault{kind: "warn", err: fmt.Errorf("core: WARN escalated to recovery")}
		}
	}
	if fserr.IsFault(out.err) {
		r.stats.FaultResults++
		r.tel.Event("fault-result", "operation returned fault: %v", out.err)
		return &fault{kind: "result", err: out.err}
	}
	return nil
}

// do executes one operation with recording and recovery. The op's outcome
// fields are filled either by the base (common case) or by recovery.
func (r *FS) do(op *oplog.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.OpsExecuted++
	// Execute on a clone: if the watchdog abandons a frozen operation, the
	// stuck goroutine keeps mutating only the clone, never the op whose
	// outcome recovery decides.
	attempt := op.Clone()
	base := r.base // snapshot: an abandoned frozen goroutine must keep using
	// the instance it started on, not the one recovery installs
	flt := r.capture(func() error { return oplog.Apply(base, attempt) })
	if flt != nil {
		r.recoverFrom(flt, op)
		return
	}
	op.Errno, op.RetFD, op.RetIno, op.RetN = attempt.Errno, attempt.RetFD, attempt.RetIno, attempt.RetN
	op.RetData = attempt.RetData
	r.afterSuccess(op)
}

// afterSuccess records a completed operation and advances the stable point
// on durable syncs.
func (r *FS) afterSuccess(op *oplog.Op) {
	if op.Kind.Mutating() {
		r.log.Append(op)
		r.stats.OpsRecorded++
	}
	if (op.Kind == oplog.KSync || op.Kind == oplog.KFsync) && op.Errno == 0 {
		r.log.Stable(r.base.OpenFDs(), r.base.Clock())
		r.stats.StablePoints++
	}
}

// execRead runs a read under the detection envelope, returning the data or
// the fault.
func (r *FS) execRead(fd fsapi.FD, off int64, n int) ([]byte, *fault) {
	var data []byte
	base := r.base
	flt := r.capture(func() error {
		var err error
		data, err = base.ReadAt(fd, off, n)
		return err
	})
	if flt != nil {
		return nil, flt
	}
	return data, nil
}

// withInjectionDisabled runs supervisor support code with the bug registry
// gated off, so a deterministic specimen cannot re-fire inside the recovery
// machinery itself (the error-avoidance guarantee of §2.2 applied to the
// supervisor's own re-reads).
func (r *FS) withInjectionDisabled(f func()) {
	if inj := r.cfg.Base.Injector; inj != nil {
		inj.SetEnabled(false)
		defer inj.SetEnabled(true)
	}
	f()
}
