package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/faultinject"
	"repro/internal/mkfs"
	"repro/internal/telemetry"
)

func mountTelemetry(t *testing.T, cfg Config) (*FS, *telemetry.Sink) {
	t.Helper()
	dev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(dev, mkfs.Options{}); err != nil {
		t.Fatal(err)
	}
	sink := telemetry.New()
	cfg.Telemetry = sink
	fs, err := Mount(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs, sink
}

// TestRecoveryTraceSixPhases is the tentpole acceptance check: every
// recovery the supervisor performs — in every mode — must produce a
// telemetry trace containing all six canonical phases with non-negative
// durations.
func TestRecoveryTraceSixPhases(t *testing.T) {
	for _, mode := range []Mode{ModeRAE, ModeCrashRestart, ModeNaiveReplay} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := faultinject.NewRegistry(1)
			reg.Arm(&faultinject.Specimen{
				ID: "tel-crash", Class: faultinject.Crash,
				Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
			})
			fs, sink := mountTelemetry(t, Config{Mode: mode, Base: basefs.Options{Injector: reg}})
			defer fs.Kill()

			// Build up a few recorded ops, then detonate twice.
			if err := fs.Mkdir("/a", 0o755); err != nil {
				t.Fatal(err)
			}
			fd, err := fs.Create("/a/f", 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(fd, 0, []byte("x")); err != nil {
				t.Fatal(err)
			}
			_ = fs.Mkdir("/boom1", 0o755)
			_ = fs.Mkdir("/boom2", 0o755)

			st := fs.Stats()
			if st.Recoveries != 2 {
				t.Fatalf("recoveries = %d, want 2", st.Recoveries)
			}
			traces := sink.RecoveryTraces()
			if len(traces) != 2 {
				t.Fatalf("retained traces = %d, want 2", len(traces))
			}
			for _, tr := range traces {
				if tr.Trigger != "panic" {
					t.Errorf("trace %d trigger = %q, want panic", tr.ID, tr.Trigger)
				}
				if tr.Mode != mode.String() {
					t.Errorf("trace %d mode = %q, want %q", tr.ID, tr.Mode, mode)
				}
				if len(tr.Spans) != len(telemetry.Phases()) {
					t.Fatalf("trace %d has %d spans, want %d", tr.ID, len(tr.Spans), len(telemetry.Phases()))
				}
				for i, want := range telemetry.Phases() {
					sp := tr.Spans[i]
					if sp.Phase != want {
						t.Errorf("trace %d span %d = %q, want %q", tr.ID, i, sp.Phase, want)
					}
					if sp.Duration < 0 {
						t.Errorf("trace %d phase %q duration %v < 0", tr.ID, sp.Phase, sp.Duration)
					}
				}
				if tr.Total <= 0 {
					t.Errorf("trace %d total = %v, want > 0", tr.ID, tr.Total)
				}
				wantOutcome := map[Mode]string{
					ModeRAE: "recovered", ModeCrashRestart: "crash-restart", ModeNaiveReplay: "degraded",
				}[mode]
				if tr.Outcome != wantOutcome {
					t.Errorf("trace %d outcome = %q, want %q", tr.ID, tr.Outcome, wantOutcome)
				}
			}
			if got := sink.Counter("recovery.trigger.panic").Value(); got != 2 {
				t.Errorf("recovery.trigger.panic = %d, want 2", got)
			}
		})
	}
}

// TestWarnAndDegradeEventsJournaled checks satellite 2: WARN records and
// degradation diagnostics flow through the telemetry event journal without
// changing return-value behavior.
func TestWarnAndDegradeEventsJournaled(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "tel-warn", Class: faultinject.Warn,
		Deterministic: true, Op: "unlink", Point: "entry", PathSubstr: "warned",
	})
	fs, sink := mountTelemetry(t, Config{Base: basefs.Options{Injector: reg}, EscalateWarns: true})
	defer fs.Kill()

	fd, err := fs.Create("/warned", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	// The WARN fires inside unlink; escalation recovers and the op still
	// succeeds via the shadow, so the application sees no failure.
	if err := fs.Unlink("/warned"); err != nil {
		t.Fatalf("unlink should be masked, got %v", err)
	}
	kinds := map[string]int{}
	for _, ev := range sink.Events() {
		kinds[ev.Kind]++
	}
	if kinds["warn"] == 0 {
		t.Errorf("no 'warn' event journaled: %v", kinds)
	}
	if kinds["warn-escalated"] == 0 {
		t.Errorf("no 'warn-escalated' event journaled: %v", kinds)
	}
	if kinds["recovery"] == 0 {
		t.Errorf("no 'recovery' event journaled: %v", kinds)
	}
	if got := sink.Counter("basefs.warns").Value(); got == 0 {
		t.Error("basefs.warns counter not incremented")
	}
}

// TestTelemetryConcurrentWorkload hammers a supervised filesystem from many
// goroutines while a deterministic crash specimen fires and snapshots are
// taken concurrently; it exists to run under -race, and asserts the metrics
// that must be exact.
func TestTelemetryConcurrentWorkload(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "tel-conc-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
	})
	fs, sink := mountTelemetry(t, Config{Base: basefs.Options{Injector: reg}})
	defer fs.Kill()

	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				path := fmt.Sprintf("/w%d-%d", w, i)
				if i%10 == 9 {
					_ = fs.Mkdir(fmt.Sprintf("/boom-w%d-%d", w, i), 0o755)
					continue
				}
				fd, err := fs.Create(path, 0o644)
				if err != nil {
					continue
				}
				_, _ = fs.WriteAt(fd, 0, []byte("data"))
				_ = fs.Close(fd)
				if i%7 == 0 {
					_ = fs.Sync()
				}
			}
		}(w)
	}
	// Snapshot concurrently with the workload.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = sink.Snapshot()
			_ = sink.Events()
			_ = sink.RecoveryTraces()
		}
	}()
	wg.Wait()
	<-done

	st := fs.Stats()
	if st.Recoveries == 0 {
		t.Fatal("expected recoveries under the crash specimen")
	}
	if got := sink.Counter("recovery.trigger.panic").Value(); got != st.Recoveries {
		t.Errorf("recovery.trigger.panic = %d, want %d", got, st.Recoveries)
	}
	for _, tr := range sink.RecoveryTraces() {
		if len(tr.Spans) != len(telemetry.Phases()) {
			t.Fatalf("trace %d has %d spans", tr.ID, len(tr.Spans))
		}
	}
	snap := sink.Snapshot()
	if snap.Counters["basefs.op.create"] != 0 {
		// op histograms are histograms, not counters: presence here is a bug
		t.Error("per-op instrument registered as a counter")
	}
	if snap.Histograms["basefs.op.create"].Count == 0 {
		t.Error("basefs.op.create histogram has no observations")
	}
	if snap.Counters["oplog.appends"] == 0 {
		t.Error("oplog.appends counter has no increments")
	}
	if snap.Counters["faultinject.fired"] == 0 {
		t.Error("faultinject.fired counter has no increments")
	}
}

// TestNoTelemetry checks the opt-out: a supervisor mounted with NoTelemetry
// has a nil sink and still recovers correctly.
func TestNoTelemetry(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "tel-off-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "boom",
	})
	dev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(dev, mkfs.Options{}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Config{NoTelemetry: true, Base: basefs.Options{Injector: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	if fs.Telemetry() != nil {
		t.Fatal("NoTelemetry mount still has a sink")
	}
	if err := fs.Mkdir("/boom", 0o755); err != nil {
		t.Fatalf("recovery without telemetry failed: %v", err)
	}
	if fs.Stats().Recoveries != 1 {
		t.Fatal("expected one recovery")
	}
}

// TestDefaultTelemetry checks the always-on default: a zero-value Config
// wires the process-global sink.
func TestDefaultTelemetry(t *testing.T) {
	dev := blockdev.NewMem(16384)
	if _, err := mkfs.Format(dev, mkfs.Options{}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Kill()
	if fs.Telemetry() != telemetry.Default() {
		t.Fatal("zero-value Config should use telemetry.Default()")
	}
}
