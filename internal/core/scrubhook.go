package core

import (
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/journal"
	"repro/internal/scrub"
)

// Scrubber lifecycle and the supervisor's half of its contract: the
// scrubber checks frozen views and reports; the supervisor freezes views,
// refreshes the scoped-fsck trust baseline on clean passes, and trips the
// recovery fence proactively on corrupt ones.

// startScrubber wires the background scrubber over a snapshottable device
// and, unless the host schedules passes externally (ExternalScrub), starts
// its periodic loop. Called once from Mount.
func (r *FS) startScrubber(snap blockdev.Snapshotter) {
	interval := r.cfg.ScrubInterval
	if r.cfg.ExternalScrub {
		interval = 0 // passes arrive via Scrubber().RunOnce(), never a ticker
	}
	r.scrub = scrub.New(scrub.Config{
		Interval:  interval,
		Workers:   r.cfg.ScrubWorkers,
		Telemetry: r.tel,
		Freeze: func() (blockdev.Device, uint64, error) {
			// The generation is sampled before the snapshot: if a recovery
			// completes after this point, the gen comparison in onScrubReport
			// discards the (possibly stale) verdict.
			gen := r.gen.Load()
			view, err := frozenScrubView(snap.SnapshotDevice())
			return view, gen, err
		},
		OnReport: r.onScrubReport,
	})
	r.scrub.Start()
}

// frozenScrubView layers the journal's committed transactions over a device
// snapshot, producing the logical post-replay image — the same composition
// the recovery plan freezes for the shadow. The snapshot may be taken
// mid-journal-replay or mid-commit; either way committed transactions are
// re-applied by the overlay and uncommitted ones are invisible, so the pass
// never mistakes in-flight writes for damage. Superblock problems are left
// for the checker to report, not treated as freeze failures.
func frozenScrubView(dev blockdev.Device) (blockdev.Device, error) {
	sbb, err := dev.ReadBlock(0)
	if err != nil {
		return dev, nil
	}
	sb, err := disklayout.DecodeSuperblock(sbb)
	if err != nil {
		return dev, nil
	}
	over, _, err := journal.CommittedOverlay(dev, sb)
	if err != nil {
		return nil, err
	}
	return blockdev.NewOverlay(dev, over), nil
}

// onScrubReport consumes one pass's verdict on the scrubber's goroutine.
func (r *FS) onScrubReport(rep *fsck.Report, gen uint64) {
	if rep == nil {
		return // freeze failed; the scrubber already counted and journaled it
	}
	if rep.Clean() {
		// A clean full pass (re-)establishes the scoped-fsck baseline — the
		// on-disk state as of the frozen view is verified, and every write
		// since is in the touched set (nothing resets it outside recovery).
		// Entering the gate read-side excludes recoveries, so the generation
		// comparison and the flag store are atomic with respect to them; a
		// pass whose view predates a recovery is simply discarded. A clean
		// image also ends any corruption episode, re-arming the trip below.
		si := r.gate.enter()
		if r.gen.Load() == gen {
			r.verified.Store(true)
		}
		r.gate.exit(si)
		r.scrubTripped.Store(false)
		return
	}
	// Latent corruption: invalidate the baseline, then trip the recovery
	// fence proactively so the damage is handled before any application
	// operation observes it. recoverExclusive discards the trip if another
	// recovery superseded this pass's view. The trip fires once per
	// corruption episode (re-armed by a clean pass or a recovery whose
	// check passes): damage the recovery cannot repair — durable corruption
	// in a region nothing rewrites — would otherwise trip a recovery on
	// every pass forever, each one journaling the identical degrade. The
	// per-pass findings still land in scrub.* telemetry either way.
	r.verified.Store(false)
	if r.scrubTripped.CompareAndSwap(false, true) {
		flt := &fault{kind: "scrub", external: true, err: rep.Err()}
		r.recoverExclusive(flt, nil, gen)
	}
}
