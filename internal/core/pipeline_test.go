package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/oplog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestWarmResumeReplaysOnlySuffix is the incremental-recovery acceptance
// check: after a first fault with a large op gap, a second fault shortly
// after must replay only the ops recorded since — the retained warm engine
// covers the rest — and the reuse must be visible in both Stats and the
// recovery.replay.reused_ops counter.
func TestWarmResumeReplaysOnlySuffix(t *testing.T) {
	sink := telemetry.New()
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "boom-a", Class: faultinject.Crash, Deterministic: true,
		Prob: 1.0, Op: "mkdir", Point: "entry", PathSubstr: "boomA", MaxFires: 1,
	})
	reg.Arm(&faultinject.Specimen{
		ID: "boom-b", Class: faultinject.Crash, Deterministic: true,
		Prob: 1.0, Op: "mkdir", Point: "entry", PathSubstr: "boomB", MaxFires: 1,
	})
	fs, _, _ := newSupervised(t, Config{
		Base:      basefs.Options{Injector: reg},
		Telemetry: sink,
	})

	const gap1, gap2 = 200, 100
	for i := 0; i < gap1; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/a%03d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir("/boomA", 0o755); err != nil { // fault 1: cold recovery
		t.Fatal(err)
	}
	replayedCold := fs.Stats().OpsReplayed
	if replayedCold < gap1 {
		t.Fatalf("cold recovery replayed %d ops, want >= %d", replayedCold, gap1)
	}
	for i := 0; i < gap2; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/b%03d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir("/boomB", 0o755); err != nil { // fault 2: warm resume
		t.Fatal(err)
	}

	st := fs.Stats()
	if st.Recoveries != 2 || st.Degradations != 0 || st.AppFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	replayedWarm := st.OpsReplayed - replayedCold
	// The warm resume replays the ~gap2 new ops (plus the in-flight op),
	// never the whole log again.
	if replayedWarm > gap2+10 {
		t.Errorf("warm recovery replayed %d ops, want ~%d (suffix only)", replayedWarm, gap2)
	}
	// Everything before the suffix was reused: the gap1 ops plus fault 1's
	// in-flight op.
	if st.OpsReused < gap1 || st.OpsReused > gap1+10 {
		t.Errorf("OpsReused = %d, want ~%d", st.OpsReused, gap1)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["recovery.replay.reused_ops"]; got != st.OpsReused {
		t.Errorf("recovery.replay.reused_ops = %d, Stats().OpsReused = %d", got, st.OpsReused)
	}
	for _, h := range []string{"recovery.stage.plan_ns", "recovery.stage.reboot_ns",
		"recovery.stage.replay_ns", "recovery.stage.install_ns", "recovery.stage.wall_ns"} {
		if snap.Histograms[h].Count != 2 {
			t.Errorf("%s observed %d recoveries, want 2", h, snap.Histograms[h].Count)
		}
	}

	// Both gaps' state must be visible and usable afterwards.
	for _, path := range []string{"/a000", "/a199", "/b000", "/b099", "/boomA", "/boomB"} {
		if _, err := fs.Stat(path); err != nil {
			t.Errorf("Stat(%s) after warm recovery: %v", path, err)
		}
	}
}

// TestWarmStateInvalidatedBySync pins the warm engine's validity key: a
// durable point between faults moves the stable seq and writes the device,
// so the second recovery must fall back to a cold replay of the (now
// truncated) log rather than trust the stale overlay.
func TestWarmStateInvalidatedBySync(t *testing.T) {
	reg := faultinject.NewRegistry(2)
	reg.Arm(&faultinject.Specimen{
		ID: "boom-a", Class: faultinject.Crash, Deterministic: true,
		Prob: 1.0, Op: "mkdir", Point: "entry", PathSubstr: "boomA", MaxFires: 1,
	})
	reg.Arm(&faultinject.Specimen{
		ID: "boom-b", Class: faultinject.Crash, Deterministic: true,
		Prob: 1.0, Op: "mkdir", Point: "entry", PathSubstr: "boomB", MaxFires: 1,
	})
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})

	for i := 0; i < 50; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/a%02d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir("/boomA", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // moves the stable point, writes the device
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := fs.Mkdir(fmt.Sprintf("/b%02d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Mkdir("/boomB", 0o755); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.Recoveries != 2 || st.AppFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OpsReused != 0 {
		t.Errorf("OpsReused = %d after an intervening sync, want 0 (cold replay)", st.OpsReused)
	}
}

// TestFaultDuringRecoveryPipeline hammers the pipelined engine from many
// goroutines: faults detected while another goroutine's recovery is mid-
// flight (including mid-replay, since the replay stage runs concurrently
// with the reboot) must be superseded by the generation counter and retried
// against the recovered base, never double-recovered and never surfaced to
// the application. Run under -race in CI.
func TestFaultDuringRecoveryPipeline(t *testing.T) {
	reg := faultinject.NewRegistry(3)
	reg.Arm(&faultinject.Specimen{
		ID: "crash-burst", Class: faultinject.Crash, Deterministic: true,
		Prob: 1.0, Op: "mkdir", Point: "entry", PathSubstr: "trigger", MaxFires: 8,
	})
	fs, _, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})
	if err := fs.Mkdir("/warmup", 0o755); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var path string
				if i%10 == 5 {
					// Several goroutines detonate concurrently; whichever wins
					// the gate recovers, the rest must supersede and retry.
					path = fmt.Sprintf("/trigger-%d-%d", w, i)
				} else {
					path = fmt.Sprintf("/d-%d-%d", w, i)
				}
				if err := fs.Mkdir(path, 0o755); err != nil {
					errs <- fmt.Errorf("mkdir %s: %w", path, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := fs.Stats()
	if st.AppFailures != 0 {
		t.Errorf("app failures = %d, want 0", st.AppFailures)
	}
	if st.Recoveries == 0 {
		t.Error("burst never triggered a recovery")
	}
	if st.Degradations != 0 {
		t.Errorf("degradations = %d, want 0", st.Degradations)
	}
	// Every directory must exist afterwards — each worker's ops either
	// executed on the base or were reconstructed by a recovery.
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			path := fmt.Sprintf("/d-%d-%d", w, i)
			if i%10 == 5 {
				path = fmt.Sprintf("/trigger-%d-%d", w, i)
			}
			if _, err := fs.Stat(path); err != nil {
				t.Fatalf("Stat(%s): %v", path, err)
			}
		}
	}
	// No machinery leaked: every recovery's prefetch crew, overlap-fsck
	// goroutine, and reboot helpers must be joined once the burst settles.
	// Aborted pipelines (superseded recoveries) are the interesting case.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines: %d before burst, %d after settling\n%s",
			baseline, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestSequentialRecoveryMatchesPipelined runs the same faulty workload
// through both engines and checks each against the bug-free specification:
// the pipeline is a latency optimization, never a semantic change.
func TestSequentialRecoveryMatchesPipelined(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		name := "pipelined"
		if sequential {
			name = "sequential"
		}
		t.Run(name, func(t *testing.T) {
			reg := faultinject.NewRegistry(4)
			reg.Arm(&faultinject.Specimen{
				ID: "det-crash", Class: faultinject.Crash, Deterministic: true,
				Prob: 1.0, Op: "create", Point: "entry", PathSubstr: "trigger",
			})
			fs, _, sb := newSupervised(t, Config{
				Base:               basefs.Options{Injector: reg},
				SequentialRecovery: sequential,
			})
			trace := workload.Generate(workload.Config{
				Profile: workload.MetaHeavy, Seed: 42, NumOps: 400, Superblock: sb, SyncEvery: 120,
			})
			// Splice in detonations so recoveries happen at several depths.
			trace = append(trace,
				&oplog.Op{Kind: oplog.KCreate, Path: "/trigger-1", Perm: 0o644},
				&oplog.Op{Kind: oplog.KCreate, Path: "/trigger-2", Perm: 0o644},
			)
			outcome, state := runAgainstModel(t, fs, sb, trace)
			for i, d := range outcome {
				if i >= 5 {
					break
				}
				t.Errorf("outcome: %s", d)
			}
			for i, d := range state {
				if i >= 5 {
					break
				}
				t.Errorf("state: %s", d)
			}
			st := fs.Stats()
			if st.Recoveries < 2 {
				t.Errorf("recoveries = %d, want >= 2", st.Recoveries)
			}
			if st.AppFailures != 0 {
				t.Errorf("app failures = %d", st.AppFailures)
			}
		})
	}
}
