package core

import (
	"runtime"
	"sync"
	"time"
	"unsafe"

	"repro/internal/telemetry"
)

// gateStripes is the read-side stripe count of the recovery gate: the next
// power of two at or above GOMAXPROCS at init, capped so the writer's
// drain loop stays short.
var gateStripes = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	s := 1
	for s < n {
		s <<= 1
	}
	if s > 32 {
		s = 32
	}
	return s
}()

// gateStripe is one padded RWMutex stripe; padding keeps two stripes out of
// one cache line so uncontended readers on different cores do not
// false-share.
type gateStripe struct {
	mu sync.RWMutex
	_  [40]byte
}

// gate is the recovery fence. In the common case every operation enters
// through the read side of one stripe — picked by goroutine identity, so
// independent operations never touch the same mutex — and runs fully in
// parallel. When a fault is detected, the faulting goroutine closes the
// gate: it write-locks every stripe, which (RWMutex writer preference)
// blocks new entries and waits for every in-flight operation to drain, then
// runs recovery exclusively. Reopening releases the stripes; blocked
// operations resume against the recovered base.
//
// Reads enter the gate too — they may not bypass it, because a read must
// never observe the in-memory state of a base instance that a concurrent
// recovery has already declared dead (and a faulting read itself triggers
// recovery; see DESIGN.md).
type gate struct {
	stripes []gateStripe

	// waitNs records contended entries only: the time an operation spent
	// blocked at a closed (or closing) gate ("core.fence.wait_ns").
	waitNs *telemetry.Histogram
	// inflight counts operations currently inside the gate ("core.inflight").
	inflight *telemetry.Gauge
}

func newGate(tel *telemetry.Sink) *gate {
	g := &gate{stripes: make([]gateStripe, gateStripes)}
	if tel != nil {
		g.waitNs = tel.Histogram("core.fence.wait_ns")
		g.inflight = tel.Gauge("core.inflight")
	}
	return g
}

// stripeFor picks a stripe for the calling goroutine (same goroutine-stack
// address trick as telemetry's sharded counters).
func (g *gate) stripeFor() int {
	var probe byte
	h := uint32(uintptr(unsafe.Pointer(&probe)) >> 4)
	h *= 2654435761
	return int((h >> 16) & uint32(len(g.stripes)-1))
}

// enter admits one operation through the read side, returning the stripe to
// pass to exit. The fast path is a single uncontended TryRLock; only a
// closed or closing gate pays for a clock read.
func (g *gate) enter() int {
	i := g.stripeFor()
	mu := &g.stripes[i].mu
	if !mu.TryRLock() {
		t0 := time.Now()
		mu.RLock()
		g.waitNs.Observe(time.Since(t0))
	}
	g.inflight.Add(1)
	return i
}

// exit releases the read side acquired by enter.
func (g *gate) exit(i int) {
	g.inflight.Add(-1)
	g.stripes[i].mu.RUnlock()
}

// close write-locks every stripe in index order: new entries block, and the
// call returns only once every in-flight operation has drained. The caller
// then owns the supervisor exclusively until open.
func (g *gate) close() {
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
	}
}

// open reopens the gate after close.
func (g *gate) open() {
	for i := range g.stripes {
		g.stripes[i].mu.Unlock()
	}
}
