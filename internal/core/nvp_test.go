package core

import (
	"errors"
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/oplog"
	"repro/internal/workload"
)

func TestNVP3AgreesOnCleanWorkload(t *testing.T) {
	n, err := NewNVP3(16384, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Generate(workload.Config{Profile: workload.Soup, Seed: 3, NumOps: 400})
	for _, rec := range trace {
		op := rec.Clone()
		op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
		_ = n.Do(op)
	}
	st := n.Stats()
	if st.Disagreement != 0 {
		t.Errorf("clean workload produced %d disagreements", st.Disagreement)
	}
	if st.VersionsDead != 0 {
		t.Errorf("%d versions died on a clean workload", st.VersionsDead)
	}
}

func TestNVP3MasksSingleVersionCrash(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "nvp-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry", PathSubstr: "trigger",
	})
	n, err := NewNVP3(16384, basefs.Options{Injector: reg})
	if err != nil {
		t.Fatal(err)
	}
	op := &oplog.Op{Kind: oplog.KMkdir, Path: "/trigger", Perm: 0o755}
	if err := n.Do(op); err != nil {
		t.Fatalf("NVP did not mask the base's crash: %v", err)
	}
	st := n.Stats()
	if st.PanicsMasked != 1 || st.VersionsDead != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The surviving two versions continue to serve.
	op = &oplog.Op{Kind: oplog.KCreate, Path: "/trigger/file", Perm: 0o644}
	if err := n.Do(op); err != nil {
		t.Fatalf("post-crash operation failed: %v", err)
	}
}

func TestNVP3FailsWithoutMajority(t *testing.T) {
	reg := faultinject.NewRegistry(1)
	reg.Arm(&faultinject.Specimen{
		ID: "nvp-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry",
	})
	n, err := NewNVP3(16384, basefs.Options{Injector: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the base (version 0) via the specimen.
	if err := n.Do(&oplog.Op{Kind: oplog.KMkdir, Path: "/a", Perm: 0o755}); err != nil {
		t.Fatal(err)
	}
	// Manually mark another version dead to simulate a second failure.
	n.dead[1] = true
	op := &oplog.Op{Kind: oplog.KMkdir, Path: "/b", Perm: 0o755}
	if err := n.Do(op); !errors.Is(err, fserr.ErrIO) {
		t.Fatalf("single-survivor NVP returned %v, want EIO", err)
	}
}
