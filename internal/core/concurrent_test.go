package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/fsck"
)

// TestConcurrentApplicationsUnderRecovery drives the supervisor from many
// goroutines while a probabilistic crash specimen fires: operations
// serialize at the supervisor, recoveries interleave with waiting callers,
// and at the end the filesystem must be structurally clean with every
// surviving file intact. Run with -race.
func TestConcurrentApplicationsUnderRecovery(t *testing.T) {
	reg := faultinject.NewRegistry(21)
	reg.Arm(&faultinject.Specimen{
		ID: "conc-crash", Class: faultinject.Crash,
		Deterministic: false, Prob: 0.01, Point: "entry",
	})
	fs, dev, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := fmt.Sprintf("/w%d", w)
			if err := fs.Mkdir(dir, 0o755); err != nil {
				t.Errorf("mkdir %s: %v", dir, err)
				return
			}
			for i := 0; i < 40; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i)
				fd, err := fs.Create(p, 0o644)
				if err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				payload := bytes.Repeat([]byte{byte(w*40 + i)}, 256)
				if _, err := fs.WriteAt(fd, 0, payload); err != nil {
					t.Errorf("write %s: %v", p, err)
					return
				}
				got, err := fs.ReadAt(fd, 0, 256)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("readback %s: %v", p, err)
					return
				}
				if err := fs.Close(fd); err != nil {
					t.Errorf("close %s: %v", p, err)
					return
				}
				if i%10 == 9 {
					if err := fs.Sync(); err != nil {
						t.Errorf("sync: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := fs.Stats()
	if st.Recoveries == 0 {
		t.Log("note: specimen never fired this run (probabilistic)")
	}
	if st.AppFailures != 0 {
		t.Errorf("app failures under concurrency: %+v", st)
	}
	// Every file is present with the right content.
	for w := 0; w < workers; w++ {
		for i := 0; i < 40; i++ {
			p := fmt.Sprintf("/w%d/f%d", w, i)
			fd, err := fs.Open(p)
			if err != nil {
				t.Fatalf("reopen %s: %v", p, err)
			}
			got, err := fs.ReadAt(fd, 0, 256)
			if err != nil || len(got) != 256 || got[0] != byte(w*40+i) {
				t.Fatalf("content %s: %v", p, err)
			}
			fs.Close(fd)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("%s", p)
		}
	}
}

// TestRecoveryUnderLoadRepeatedFaults hammers the supervisor with a mixed
// workload from many goroutines while a deterministic specimen fires
// repeatedly, guaranteeing several recoveries interleave with in-flight
// operations. Afterwards: no acknowledged operation may be lost or
// double-applied (file set and contents must match the oracle each worker
// tracked), descriptors opened before a recovery must still work after it,
// and the image must check clean. Run with -race.
func TestRecoveryUnderLoadRepeatedFaults(t *testing.T) {
	reg := faultinject.NewRegistry(7)
	// Fires on every 25th create from the 10th onward, five times total:
	// recoveries land mid-workload, repeatedly.
	reg.Arm(&faultinject.Specimen{
		ID: "load-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "create", Point: "entry",
		AfterN: 10, MaxFires: 5,
	})
	fs, dev, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})

	const (
		workers = 8
		files   = 30
	)
	// Per-worker oracle: file name -> expected first byte, for files that
	// must exist at the end (nil slot = unlinked).
	type oracle struct {
		exists [files]bool
		keepFD [files]bool
	}
	oracles := make([]oracle, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := fmt.Sprintf("/lw%d", w)
			if err := fs.Mkdir(dir, 0o755); err != nil {
				t.Errorf("mkdir %s: %v", dir, err)
				return
			}
			// An fd held open across the whole run — including every
			// recovery — must stay usable (post-recovery descriptor table).
			heldPath := dir + "/held"
			held, err := fs.Create(heldPath, 0o644)
			if err != nil {
				t.Errorf("create %s: %v", heldPath, err)
				return
			}
			for i := 0; i < files; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i)
				fd, err := fs.Create(p, 0o644)
				if err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				payload := bytes.Repeat([]byte{byte(w*files + i)}, 128)
				if _, err := fs.WriteAt(fd, 0, payload); err != nil {
					t.Errorf("write %s: %v", p, err)
					return
				}
				if err := fs.Close(fd); err != nil {
					t.Errorf("close %s: %v", p, err)
					return
				}
				oracles[w].exists[i] = true
				// Exercise the held fd so a stale descriptor table surfaces.
				if _, err := fs.WriteAt(held, int64(i), []byte{byte(i)}); err != nil {
					t.Errorf("held write %s: %v", heldPath, err)
					return
				}
				switch i % 5 {
				case 1: // rename in place
					np := p + ".r"
					if err := fs.Rename(p, np); err != nil {
						t.Errorf("rename %s: %v", p, err)
						return
					}
					if err := fs.Rename(np, p); err != nil {
						t.Errorf("rename back %s: %v", np, err)
						return
					}
				case 2: // unlink: must be gone at the end
					if err := fs.Unlink(p); err != nil {
						t.Errorf("unlink %s: %v", p, err)
						return
					}
					oracles[w].exists[i] = false
				case 3:
					if _, err := fs.Readdir(dir); err != nil {
						t.Errorf("readdir %s: %v", dir, err)
						return
					}
				case 4:
					if err := fs.Fsync(held); err != nil {
						t.Errorf("fsync: %v", err)
						return
					}
				}
			}
			if err := fs.Close(held); err != nil {
				t.Errorf("close held: %v", err)
			}
		}(w)
	}
	wg.Wait()

	st := fs.Stats()
	if st.Recoveries < 1 {
		t.Errorf("expected repeated recoveries, got %d (stats %+v)", st.Recoveries, st)
	}
	if st.AppFailures != 0 {
		t.Errorf("app failures under load: %+v", st)
	}

	// No acknowledged op lost, no unlink resurrect, contents exact.
	for w := 0; w < workers; w++ {
		dir := fmt.Sprintf("/lw%d", w)
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("%s/f%d", dir, i)
			fd, err := fs.Open(p)
			if oracles[w].exists[i] {
				if err != nil {
					t.Errorf("lost file %s: %v", p, err)
					continue
				}
				got, err := fs.ReadAt(fd, 0, 128)
				if err != nil || len(got) != 128 || got[0] != byte(w*files+i) {
					t.Errorf("content %s: len=%d err=%v", p, len(got), err)
				}
				fs.Close(fd)
			} else if err == nil {
				t.Errorf("unlinked file %s resurrected", p)
				fs.Close(fd)
			}
		}
		// The held file accumulated one byte per iteration.
		fd, err := fs.Open(dir + "/held")
		if err != nil {
			t.Errorf("held file lost in %s: %v", dir, err)
			continue
		}
		got, err := fs.ReadAt(fd, 0, files)
		if err != nil || len(got) != files {
			t.Errorf("held content %s: len=%d err=%v", dir, len(got), err)
		}
		for i := 0; i < len(got); i++ {
			if got[i] != byte(i) {
				t.Errorf("held byte %d in %s = %#x, want %#x", i, dir, got[i], byte(i))
				break
			}
		}
		fs.Close(fd)
	}

	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("%s", p)
		}
	}
}

// TestWriteBufferAliasingDuringRecovery is the regression test for the
// Op.Data aliasing bug: once WriteAt returns, the buffer belongs to the
// caller again and may be reused freely — but the recorded operation lives
// on in the log until the next stable point, and a later recovery replays
// it. If the facade did not copy the payload, the replay would read the
// caller's reused buffer instead of the bytes that were written.
//
// Sequence: a write survives a freeze recovery (exercising the
// abandoned-goroutine path), the caller then scribbles over its buffer, and
// a second fault forces a full log replay. The readback must show the
// original payload.
func TestWriteBufferAliasingDuringRecovery(t *testing.T) {
	reg := faultinject.NewRegistry(3)
	reg.Arm(&faultinject.Specimen{
		ID: "alias-freeze", Class: faultinject.Freeze,
		Deterministic: true, Op: "writeat", Point: "entry",
		AfterN: 1, MaxFires: 1, FreezeFor: 500 * time.Millisecond,
	})
	reg.Arm(&faultinject.Specimen{
		ID: "alias-crash", Class: faultinject.Crash,
		Deterministic: true, Op: "mkdir", Point: "entry",
		MaxFires: 1,
	})
	fs, _, _ := newSupervised(t, Config{
		Base:     basefs.Options{Injector: reg},
		Watchdog: 100 * time.Millisecond,
	})

	fd, err := fs.Create("/alias", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// First write passes (AfterN skips it); second freezes for 500ms while
	// the 100ms watchdog abandons it and the shadow replays it.
	if _, err := fs.WriteAt(fd, 0, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 64)
	buf := make([]byte, len(payload))
	copy(buf, payload)
	if _, err := fs.WriteAt(fd, 0, buf); err != nil {
		t.Fatalf("WriteAt across recovery: %v", err)
	}
	st := fs.Stats()
	if st.Freezes == 0 || st.Recoveries == 0 {
		t.Fatalf("freeze recovery did not happen: %+v", st)
	}
	// The call has returned: the caller is entitled to reuse its buffer.
	for i := range buf {
		buf[i] = 0xEE
	}
	// Nothing has synced, so the write is still in the log. Force a second
	// recovery, whose shadow replay reconstructs the file from the recorded
	// payload — which must be a private copy, not the scribbled buffer.
	if err := fs.Mkdir("/poke", 0o755); err != nil {
		t.Fatalf("Mkdir across recovery: %v", err)
	}
	if st = fs.Stats(); st.Recoveries < 2 {
		t.Fatalf("second recovery did not happen: %+v", st)
	}
	got, err := fs.ReadAt(fd, 0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("replayed write used the mutated buffer: got %#x... want %#x...", got[0], payload[0])
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
}
