package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/basefs"
	"repro/internal/faultinject"
	"repro/internal/fsck"
)

// TestConcurrentApplicationsUnderRecovery drives the supervisor from many
// goroutines while a probabilistic crash specimen fires: operations
// serialize at the supervisor, recoveries interleave with waiting callers,
// and at the end the filesystem must be structurally clean with every
// surviving file intact. Run with -race.
func TestConcurrentApplicationsUnderRecovery(t *testing.T) {
	reg := faultinject.NewRegistry(21)
	reg.Arm(&faultinject.Specimen{
		ID: "conc-crash", Class: faultinject.Crash,
		Deterministic: false, Prob: 0.01, Point: "entry",
	})
	fs, dev, _ := newSupervised(t, Config{Base: basefs.Options{Injector: reg}})

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := fmt.Sprintf("/w%d", w)
			if err := fs.Mkdir(dir, 0o755); err != nil {
				t.Errorf("mkdir %s: %v", dir, err)
				return
			}
			for i := 0; i < 40; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i)
				fd, err := fs.Create(p, 0o644)
				if err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				payload := bytes.Repeat([]byte{byte(w*40 + i)}, 256)
				if _, err := fs.WriteAt(fd, 0, payload); err != nil {
					t.Errorf("write %s: %v", p, err)
					return
				}
				got, err := fs.ReadAt(fd, 0, 256)
				if err != nil || !bytes.Equal(got, payload) {
					t.Errorf("readback %s: %v", p, err)
					return
				}
				if err := fs.Close(fd); err != nil {
					t.Errorf("close %s: %v", p, err)
					return
				}
				if i%10 == 9 {
					if err := fs.Sync(); err != nil {
						t.Errorf("sync: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := fs.Stats()
	if st.Recoveries == 0 {
		t.Log("note: specimen never fired this run (probabilistic)")
	}
	if st.AppFailures != 0 {
		t.Errorf("app failures under concurrency: %+v", st)
	}
	// Every file is present with the right content.
	for w := 0; w < workers; w++ {
		for i := 0; i < 40; i++ {
			p := fmt.Sprintf("/w%d/f%d", w, i)
			fd, err := fs.Open(p)
			if err != nil {
				t.Fatalf("reopen %s: %v", p, err)
			}
			got, err := fs.ReadAt(fd, 0, 256)
			if err != nil || len(got) != 256 || got[0] != byte(w*40+i) {
				t.Fatalf("content %s: %v", p, err)
			}
			fs.Close(fd)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if rep := fsck.Check(dev); !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("%s", p)
		}
	}
}
