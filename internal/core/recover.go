package core

import (
	"time"

	"repro/internal/basefs"
	"repro/internal/fserr"
	"repro/internal/oplog"
	"repro/internal/telemetry"
)

// recoverFrom is the supervisor's response to a detected fault, dispatching
// to the configured strategy. It runs with the recovery gate held
// exclusively: every in-flight operation has drained and no new one can
// enter until it returns. inflight is the operation whose return value the
// application has not seen (nil for probes with no replayable form); on
// return its outcome fields carry the answer the application gets.
//
// Every recovery produces one telemetry trace spanning the six canonical
// phases (detect → fence → reboot → shadow-exec → handoff → resume); phases
// a strategy never enters appear with zero duration.
func (r *FS) recoverFrom(flt *fault, inflight *oplog.Op) {
	r.recovering.Store(true)
	defer r.recovering.Store(false)
	r.cnt.recoveries.Add(1)
	r.extFault = flt.external
	defer func() { r.extFault = false }()
	tr := r.tel.StartRecovery(flt.kind, r.cfg.Mode.String(), r.log.Len())
	r.tel.Counter("recovery.trigger." + flt.kind).Inc()
	t0 := time.Now()
	var outcome string
	switch r.cfg.Mode {
	case ModeCrashRestart:
		outcome = r.crashRestart(tr, inflight)
	case ModeNaiveReplay:
		outcome = r.naiveReplay(tr, inflight)
	default:
		outcome = r.raeRecover(tr, inflight)
	}
	tr.Finish(outcome)
	r.cnt.downtimeNs.Add(int64(time.Since(t0)))
	// Every WARN emitted up to here has been consumed by this recovery: the
	// faulty instance is gone and the pre-persist barrier starts fresh.
	r.warnsHandled.Store(r.warns.n.Load())
}

// addPhases appends one recovery's phase breakdown to the post-mortem list.
func (r *FS) addPhases(ph RecoveryPhases) {
	r.postMu.Lock()
	r.phases = append(r.phases, ph)
	r.postMu.Unlock()
}

// raeRecover — the paper's recovery procedure on the staged, overlapping
// engine — lives in pipeline.go.

// degrade falls back to crash-restart semantics on an already-mounted fresh
// base: the recovery machinery could not reconstruct state, so buffered
// updates are lost, descriptors are invalidated, and the in-flight operation
// fails — but the system stays up on the last durable state, and the
// failure is explicit, never silent. The reason is journaled as a "degrade"
// event so post-mortems can tell which recovery step gave up.
func (r *FS) degrade(newBase *basefs.FS, newFence *fencedDevice, inflight *oplog.Op,
	ph RecoveryPhases, reasonFormat string, args ...any) string {
	r.cnt.degradations.Add(1)
	r.tel.Event("degrade", "recovery degraded to crash-restart: "+reasonFormat, args...)
	r.base.Store(newBase)
	r.fence.Store(newFence)
	r.finishCrashRestart(inflight)
	r.addPhases(ph)
	return "degraded"
}

// crashRestart implements the status-quo baseline: remount from disk and
// surface the failure.
func (r *FS) crashRestart(tr *telemetry.Trace, inflight *oplog.Op) string {
	r.warm = nil // crash-restart semantics invalidate any retained engine
	tr.BeginPhase(telemetry.PhaseFence)
	r.fence.Load().raise()
	tr.BeginPhase(telemetry.PhaseReboot)
	r.base.Load().Kill()
	newBase, newFence, err := r.mountBase()
	if err != nil {
		r.failOp(inflight)
		return "failed"
	}
	r.base.Store(newBase)
	r.fence.Store(newFence)
	tr.BeginPhase(telemetry.PhaseResume)
	r.finishCrashRestart(inflight)
	return "crash-restart"
}

// finishCrashRestart applies crash-restart bookkeeping against the current
// (fresh) base: every pre-crash descriptor is gone, buffered operations are
// lost, and the application sees the error.
func (r *FS) finishCrashRestart(inflight *oplog.Op) {
	ops, fds, _ := r.log.Snapshot()
	lost := int64(len(fds))
	// Descriptors opened since the stable point are also gone; they are
	// found in the recorded ops.
	for _, op := range ops {
		switch op.Kind {
		case oplog.KCreate, oplog.KOpen:
			if op.Errno == 0 {
				lost++
			}
		case oplog.KClose:
			if op.Errno == 0 {
				lost--
			}
		}
	}
	if lost < 0 {
		lost = 0
	}
	r.cnt.fdsInvalidated.Add(lost)
	base := r.base.Load()
	r.log.Stable(base.OpenFDs(), base.Clock())
	r.failOp(inflight)
}

// failOp surfaces the failure to the application. A proactive recovery
// (scrub trip) has no application operation waiting on it — when it fails
// or degrades, nothing surfaced to any app, so nothing is counted.
func (r *FS) failOp(inflight *oplog.Op) {
	if inflight != nil {
		inflight.Errno = fserr.Errno(fserr.ErrIO)
		inflight.RetFD = -1
	} else if r.extFault {
		return
	}
	r.cnt.appFailures.Add(1)
}

// naiveReplay implements the Membrane-style baseline: remount and re-execute
// the recorded sequence on the base itself. Deterministic bugs in the
// sequence re-fire on every attempt — the fundamental conflict between state
// reconstruction and error avoidance (§2.2) — so after MaxReplayRetries the
// baseline degrades to crash-restart.
func (r *FS) naiveReplay(tr *telemetry.Trace, inflight *oplog.Op) string {
	r.warm = nil // replay-on-base invalidates any retained engine
	ops, fds, _ := r.log.Snapshot()
	for attempt := 0; attempt < r.cfg.MaxReplayRetries; attempt++ {
		tr.BeginPhase(telemetry.PhaseFence)
		r.fence.Load().raise()
		tr.BeginPhase(telemetry.PhaseReboot)
		r.base.Load().Kill()
		newBase, newFence, err := r.mountBase()
		if err != nil {
			r.failOp(inflight)
			return "failed"
		}
		r.base.Store(newBase)
		r.fence.Store(newFence)
		if len(fds) != 0 {
			// The base has no interface for resurrecting descriptors without
			// a shadow update; naive replay can only reopen what the log can
			// name, which descriptors are not. This is precisely the state-
			// reconstruction gap RAE's fd snapshot + hand-off closes. Treat
			// pre-stable-point descriptors as lost.
			r.cnt.fdsInvalidated.Add(int64(len(fds)))
			fds = nil
		}
		ok := true
		base := r.base.Load()
		tr.BeginPhase(telemetry.PhaseShadowExec)
		tr.Note("naive replay on base, attempt %d", attempt+1)
		for _, rec := range ops {
			op := rec.Clone()
			op.Errno, op.RetFD, op.RetIno, op.RetN = 0, 0, 0, 0
			if flt := r.capture(func() error { return oplog.Apply(base, op) }); flt != nil {
				ok = false // the deterministic bug re-fired
				break
			}
		}
		if !ok {
			continue
		}
		// Replay succeeded (transient fault): run the in-flight op.
		tr.SetOpsReplayed(len(ops))
		tr.BeginPhase(telemetry.PhaseResume)
		if inflight != nil {
			attempt := inflight.Clone()
			if flt := r.capture(func() error { return oplog.Apply(base, attempt) }); flt != nil {
				continue
			}
			*inflight = *attempt
			r.afterSuccess(inflight)
		}
		return "recovered"
	}
	// Retries exhausted: give up on the buffered state.
	r.cnt.degradations.Add(1)
	r.tel.Event("degrade", "naive replay degraded to crash-restart after %d attempts",
		r.cfg.MaxReplayRetries)
	r.fence.Load().raise()
	r.base.Load().Kill()
	newBase, newFence, err := r.mountBase()
	if err != nil {
		r.failOp(inflight)
		return "failed"
	}
	r.base.Store(newBase)
	r.fence.Store(newFence)
	tr.BeginPhase(telemetry.PhaseResume)
	r.finishCrashRestart(inflight)
	return "degraded"
}
