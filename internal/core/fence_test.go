package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/faultinject"
	"repro/internal/fserr"
	"repro/internal/model"
	"repro/internal/oplog"
)

func TestFencedDeviceBlocksAfterRaise(t *testing.T) {
	dev := blockdev.NewMem(16)
	var gen atomic.Uint64
	touched := newTouchedSet()
	f := newFence(dev, &gen, touched)
	buf := make([]byte, 4096)
	if err := f.WriteBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if gen.Load() != 1 {
		t.Errorf("write generation = %d after one write, want 1", gen.Load())
	}
	if touched.size() != 1 {
		t.Errorf("touched set size = %d after one write, want 1", touched.size())
	}
	if _, err := f.ReadBlock(1); err != nil {
		t.Fatal(err)
	}
	f.raise()
	if err := f.WriteBlock(1, buf); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("write after fence: %v", err)
	}
	if _, err := f.ReadBlock(1); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("read after fence: %v", err)
	}
	if err := f.Flush(); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("flush after fence: %v", err)
	}
	if f.NumBlocks() != 16 {
		t.Error("NumBlocks gated; it should not be")
	}
}

// TestAbandonedFrozenSyncCannotPersist is the fence's reason to exist: a
// sync frozen past the watchdog is abandoned; when it wakes up mid- or
// post-recovery it must not be able to write the device underneath the
// recovered filesystem. The recovered state must equal the specification.
func TestAbandonedFrozenSyncCannotPersist(t *testing.T) {
	reg := faultinject.NewRegistry(31)
	reg.Arm(&faultinject.Specimen{
		ID: "frozen-sync", Class: faultinject.Freeze,
		Deterministic: true, Op: "sync", Point: "entry",
		FreezeFor: 60 * time.Millisecond, MaxFires: 1,
	})
	fs, _, sb := newSupervised(t, Config{
		Base:     basefs.Options{Injector: reg},
		Watchdog: 10 * time.Millisecond,
	})
	m := model.New(sb)
	seq := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/a", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("payload-a")},
		{Kind: oplog.KSync}, // freezes; watchdog abandons; recovery runs
		{Kind: oplog.KCreate, Path: "/b", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 1, Off: 0, Data: []byte("payload-b")},
		{Kind: oplog.KClose, FD: 0},
		{Kind: oplog.KClose, FD: 1},
		{Kind: oplog.KSync},
	}
	for _, rec := range seq {
		oracle := rec.Clone()
		_ = oplog.Apply(m, oracle)
		got := rec.Clone()
		_ = oplog.Apply(fs, got)
		for _, d := range difftest.CompareOutcome(got, oracle) {
			t.Errorf("discrepancy at %s: %s", rec, d)
		}
	}
	// Give the abandoned goroutine time to wake and bounce off the fence.
	time.Sleep(80 * time.Millisecond)
	st := fs.Stats()
	if st.Freezes != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AppFailures != 0 {
		t.Errorf("app failures: %d", st.AppFailures)
	}
	gotState, err := difftest.DumpState(fs)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := difftest.DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range difftest.CompareStates(gotState, wantState) {
		t.Errorf("state: %s", d)
	}
}

// TestWarnDuringSyncVetoesPersist pins the detection-before-persist
// behavior the soak test uncovered: a WARN emitted at the sync entry seam
// must abort the sync before any write-out, and recovery must reconstruct —
// not double-apply — the buffered operations.
func TestWarnDuringSyncVetoesPersist(t *testing.T) {
	reg := faultinject.NewRegistry(32)
	reg.Arm(&faultinject.Specimen{
		ID: "warn-in-sync", Class: faultinject.Warn,
		Deterministic: true, Op: "sync", Point: "entry", MaxFires: 1,
	})
	fs, _, sb := newSupervised(t, Config{
		Base:          basefs.Options{Injector: reg},
		EscalateWarns: true,
	})
	m := model.New(sb)
	seq := []*oplog.Op{
		{Kind: oplog.KMkdir, Path: "/d", Perm: 0o755},
		{Kind: oplog.KCreate, Path: "/d/f", Perm: 0o644},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("buffered")},
		{Kind: oplog.KSync}, // WARN fires pre-persist; recovery; re-synced
		{Kind: oplog.KCreate, Path: "/d/g", Perm: 0o644},
		{Kind: oplog.KClose, FD: 0},
		{Kind: oplog.KClose, FD: 1},
	}
	for _, rec := range seq {
		oracle := rec.Clone()
		_ = oplog.Apply(m, oracle)
		got := rec.Clone()
		_ = oplog.Apply(fs, got)
		for _, d := range difftest.CompareOutcome(got, oracle) {
			t.Errorf("discrepancy at %s: %s", rec, d)
		}
	}
	st := fs.Stats()
	if st.WarnsEscalated != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AppFailures != 0 {
		t.Errorf("app failures: %d", st.AppFailures)
	}
	gotState, err := difftest.DumpState(fs)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := difftest.DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range difftest.CompareStates(gotState, wantState) {
		t.Errorf("state: %s", d)
	}
}
