package blockdev

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/disklayout"
	"repro/internal/fserr"
)

func block(fill byte) []byte {
	b := make([]byte, disklayout.BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestMemReadWriteRoundTrip(t *testing.T) {
	d := NewMem(16)
	want := block(0xAB)
	if err := d.WriteBlock(3, want); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	got, err := d.ReadBlock(3)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data differs from written data")
	}
	// Unwritten blocks read as zeros.
	got, err = d.ReadBlock(4)
	if err != nil {
		t.Fatalf("ReadBlock(4): %v", err)
	}
	if !bytes.Equal(got, make([]byte, disklayout.BlockSize)) {
		t.Error("unwritten block is not zero-filled")
	}
}

func TestMemBounds(t *testing.T) {
	d := NewMem(4)
	if _, err := d.ReadBlock(4); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("read past end: %v, want ErrIO", err)
	}
	if err := d.WriteBlock(4, block(1)); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("write past end: %v, want ErrIO", err)
	}
	if err := d.WriteBlock(0, []byte{1, 2, 3}); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("short write: %v, want ErrInvalid", err)
	}
}

func TestMemWriteIsolation(t *testing.T) {
	d := NewMem(4)
	buf := block(0x11)
	if err := d.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 0x99 // mutate caller's buffer after the write
	got, _ := d.ReadBlock(0)
	if got[0] != 0x11 {
		t.Error("device aliases the caller's write buffer")
	}
	got[1] = 0x99 // mutate the read result
	got2, _ := d.ReadBlock(0)
	if got2[1] != 0x11 {
		t.Error("device aliases the read result buffer")
	}
}

func TestMemConcurrentAccess(t *testing.T) {
	d := NewMem(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				blk := uint32((g*100 + i) % 64)
				_ = d.WriteBlock(blk, block(byte(g)))
				if _, err := d.ReadBlock(blk); err != nil {
					t.Errorf("concurrent read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMemStats(t *testing.T) {
	d := NewMem(8)
	_ = d.WriteBlock(0, block(1))
	_, _ = d.ReadBlock(0)
	_, _ = d.ReadBlock(0)
	_ = d.Flush()
	s := d.Stats().Snapshot()
	if s.Writes != 1 || s.Reads != 2 || s.Flushes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFaultInjectedReadError(t *testing.T) {
	d := NewMem(8)
	p := NewFaultPlan(42)
	p.ReadErrProb = 1.0
	d.SetFaults(p)
	if _, err := d.ReadBlock(0); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("err = %v, want ErrIO", err)
	}
	d.SetFaults(nil)
	if _, err := d.ReadBlock(0); err != nil {
		t.Errorf("after clearing faults: %v", err)
	}
}

func TestFaultInjectedCorruption(t *testing.T) {
	d := NewMem(8)
	want := block(0x55)
	if err := d.WriteBlock(1, want); err != nil {
		t.Fatal(err)
	}
	p := NewFaultPlan(7)
	p.CorruptReadProb = 1.0
	d.SetFaults(p)
	got, err := d.ReadBlock(1)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corrupted read differs in %d bytes, want exactly 1", diff)
	}
}

func TestFaultTargetedCorruptBlocks(t *testing.T) {
	d := NewMem(8)
	_ = d.WriteBlock(2, block(0x10))
	_ = d.WriteBlock(3, block(0x10))
	p := NewFaultPlan(1)
	p.CorruptBlocks = map[uint32]bool{2: true}
	d.SetFaults(p)
	got2, _ := d.ReadBlock(2)
	got3, _ := d.ReadBlock(3)
	if bytes.Equal(got2, block(0x10)) {
		t.Error("targeted block was not corrupted")
	}
	if !bytes.Equal(got3, block(0x10)) {
		t.Error("untargeted block was corrupted")
	}
}

func TestFaultTornWrite(t *testing.T) {
	d := NewMem(8)
	_ = d.WriteBlock(0, block(0xAA))
	p := NewFaultPlan(3)
	p.TornWriteProb = 1.0
	d.SetFaults(p)
	if err := d.WriteBlock(0, block(0xBB)); err != nil {
		t.Fatalf("torn write reported error: %v", err)
	}
	d.SetFaults(nil)
	got, _ := d.ReadBlock(0)
	if got[0] != 0xBB {
		t.Error("first half of torn write missing")
	}
	if got[disklayout.BlockSize-1] != 0xAA {
		t.Error("second half of torn write was persisted; want old contents")
	}
}

func TestSnapshotIndependence(t *testing.T) {
	d := NewMem(8)
	_ = d.WriteBlock(0, block(1))
	snap := d.Snapshot()
	_ = d.WriteBlock(0, block(2))
	got, _ := snap.ReadBlock(0)
	if got[0] != 1 {
		t.Error("snapshot observed later write")
	}
}

func TestCorruptBlockHelper(t *testing.T) {
	d := NewMem(8)
	_ = d.WriteBlock(5, block(0))
	if err := d.CorruptBlock(5, 10, 0xFF); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadBlock(5)
	if got[10] != 0xFF {
		t.Error("CorruptBlock had no effect")
	}
	if err := d.CorruptBlock(100, 0, 1); !errors.Is(err, fserr.ErrInvalid) {
		t.Errorf("out-of-range CorruptBlock: %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	d := NewMem(8)
	_ = d.WriteBlock(0, block(9))
	ro := NewReadOnly(d)
	if got, err := ro.ReadBlock(0); err != nil || got[0] != 9 {
		t.Errorf("read through RO handle: %v", err)
	}
	if err := ro.WriteBlock(0, block(1)); !errors.Is(err, fserr.ErrReadOnly) {
		t.Errorf("write through RO handle: %v, want ErrReadOnly", err)
	}
	if err := ro.Flush(); !errors.Is(err, fserr.ErrReadOnly) {
		t.Errorf("flush through RO handle: %v, want ErrReadOnly", err)
	}
	if ro.NumBlocks() != 8 {
		t.Errorf("NumBlocks = %d", ro.NumBlocks())
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	d, err := OpenFile(path, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	want := block(0x5A)
	if err := d.WriteBlock(7, want); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen without create and check size discovery + contents.
	d2, err := OpenFile(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumBlocks() != 16 {
		t.Errorf("NumBlocks = %d, want 16", d2.NumBlocks())
	}
	got, err := d2.ReadBlock(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("file device round trip mismatch")
	}
	if _, err := d2.ReadBlock(99); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("read past end: %v", err)
	}
	if err := d2.WriteBlock(99, want); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("write past end: %v", err)
	}
}

func TestQueueReadWrite(t *testing.T) {
	d := NewMem(32)
	q := NewQueue(d, 4, 16)
	defer q.Close()
	want := block(0x77)
	if err := q.Write(9, want); err != nil {
		t.Fatal(err)
	}
	got, err := q.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("queue round trip mismatch")
	}
}

func TestQueueAsyncWritesAndFlush(t *testing.T) {
	d := NewMem(128)
	q := NewQueue(d, 4, 32)
	defer q.Close()
	var reqs []*Request
	for i := uint32(0); i < 100; i++ {
		reqs = append(reqs, q.WriteAsync(i, block(byte(i))))
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatalf("async write %d: %v", i, err)
		}
	}
	for i := uint32(0); i < 100; i++ {
		got, err := d.ReadBlock(i)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("block %d after flush: %v", i, err)
		}
	}
	if d.Stats().Snapshot().Flushes != 1 {
		t.Error("flush did not reach the device")
	}
}

func TestQueueClosedRejects(t *testing.T) {
	d := NewMem(8)
	q := NewQueue(d, 2, 8)
	q.Close()
	q.Close() // double close is safe
	if err := q.Write(0, block(1)); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("write on closed queue: %v, want ErrIO", err)
	}
}

func TestQueueConcurrentClients(t *testing.T) {
	d := NewMem(256)
	q := NewQueue(d, 8, 64)
	defer q.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				blk := uint32(g*32 + i%32)
				if err := q.Write(blk, block(byte(g))); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := q.Read(blk); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDeterministicFaultStream(t *testing.T) {
	// Two fault plans with the same seed must corrupt identically.
	run := func() []byte {
		d := NewMem(8)
		_ = d.WriteBlock(0, block(0))
		p := NewFaultPlan(99)
		p.CorruptReadProb = 1.0
		d.SetFaults(p)
		got, _ := d.ReadBlock(0)
		return got
	}
	if !bytes.Equal(run(), run()) {
		t.Error("same seed produced different fault streams")
	}
}

func TestMemPropertyWriteThenRead(t *testing.T) {
	d := NewMem(64)
	f := func(blk uint32, fill byte) bool {
		blk %= 64
		if err := d.WriteBlock(blk, block(fill)); err != nil {
			return false
		}
		got, err := d.ReadBlock(blk)
		return err == nil && got[0] == fill && got[disklayout.BlockSize-1] == fill
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQueueConcurrentFlushHammer is the regression test for the WaitGroup
// reuse race in Flush: the old barrier Add-ed to a single shared WaitGroup
// while another goroutine's Flush was inside Wait, which the race detector
// flags and which could return a Flush before its epoch's writes landed.
// The epoch barrier must let many goroutines submit and flush concurrently,
// with every Flush covering all writes submitted before it. Run with -race.
func TestQueueConcurrentFlushHammer(t *testing.T) {
	d := NewMem(4096)
	q := NewQueue(d, 8, 64)
	defer q.Close()
	const workers = 8
	const rounds = 60
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint32(g * 512)
			for i := 0; i < rounds; i++ {
				blk := base + uint32(i%256)
				r := q.WriteAsync(blk, block(byte(i)))
				if err := q.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
				// A flush issued after the submit must imply completion.
				if err := r.Wait(); err != nil {
					t.Errorf("write after flush: %v", err)
					return
				}
				got, err := d.ReadBlock(blk)
				if err != nil || got[0] != byte(i) {
					t.Errorf("block %d not durable after flush: %v", blk, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
