// Package blockdev provides the block-device substrate under both
// filesystems.
//
// The paper's architecture (Figure 2) gives the base filesystem an
// asynchronous, queued block layer while the shadow performs simple
// synchronous reads through a direct path that bypasses the base's IO
// machinery (§4.1 suggests a user-space NVMe driver; here the direct path is
// the analogous bypass). The package also hosts the hardware-fault injection
// hooks used to exercise the shadow's runtime checks: transient read
// corruption, torn writes, and IO errors.
package blockdev

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// Device is the minimal synchronous block interface. Offsets are block
// numbers; every transfer is exactly one block.
type Device interface {
	// ReadBlock reads block blk into a fresh buffer of BlockSize bytes.
	ReadBlock(blk uint32) ([]byte, error)
	// WriteBlock writes one block. The buffer must be BlockSize bytes.
	WriteBlock(blk uint32, data []byte) error
	// NumBlocks returns the device capacity in blocks.
	NumBlocks() uint32
	// Flush makes all completed writes durable.
	Flush() error
}

// Stats counts device traffic, split by path so experiments can show the
// base and shadow exercising different IO machinery.
type Stats struct {
	Reads       atomic.Int64
	Writes      atomic.Int64
	Flushes     atomic.Int64
	ReadErrors  atomic.Int64
	WriteErrors atomic.Int64
	// ReadCalls and WriteCalls count device-level IO calls: a vectored run
	// of any length is one call, a per-block transfer is one call per block.
	// Reads/Writes keep counting blocks, so calls vs blocks is the
	// coalescing ratio.
	ReadCalls  atomic.Int64
	WriteCalls atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:       s.Reads.Load(),
		Writes:      s.Writes.Load(),
		Flushes:     s.Flushes.Load(),
		ReadErrors:  s.ReadErrors.Load(),
		WriteErrors: s.WriteErrors.Load(),
		ReadCalls:   s.ReadCalls.Load(),
		WriteCalls:  s.WriteCalls.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Reads, Writes, Flushes, ReadErrors, WriteErrors int64
	ReadCalls, WriteCalls                           int64
}

// FaultPlan describes device-level fault injection. The zero value injects
// nothing. Faults model the transient hardware errors the paper's runtime
// checks defend against (silent corruption, torn writes, EIO).
//
// A plan is safe to share across devices and goroutines: the pseudo-random
// stream and the block maps are guarded by the plan's mutex. Sharing is
// still usually wrong for campaigns that need per-device reproducibility —
// concurrent devices interleave draws from the one stream in scheduling
// order, so which device sees which fault is nondeterministic. Use Fork to
// give each device an independent plan with a derived seed instead.
type FaultPlan struct {
	mu sync.Mutex
	// rng is the deterministic pseudo-random fault stream, guarded by mu
	// (lazily seeded from seed on first use so zero-value plans work).
	rng *rand.Rand
	// seed is the value the stream was (or will be) seeded with; Fork derives
	// child seeds from it.
	seed int64
	// CorruptReadProb is the probability that a read returns a buffer with
	// one flipped bit (silent data corruption).
	CorruptReadProb float64
	// ReadErrProb is the probability a read fails with ErrIO.
	ReadErrProb float64
	// WriteErrProb is the probability a write fails with ErrIO.
	WriteErrProb float64
	// TornWriteProb is the probability a write persists only the first half
	// of the block (a torn sector), while reporting success.
	TornWriteProb float64
	// CorruptBlocks pinpoints blocks whose reads are always corrupted, for
	// deterministic crafted-fault tests.
	CorruptBlocks map[uint32]bool
	// ReadErrBlocks pinpoints blocks whose reads always fail with ErrIO,
	// for deterministic bad-sector tests (e.g. a single unreadable bitmap
	// block) where probabilistic injection would make findings flaky.
	ReadErrBlocks map[uint32]bool
	// ReadLatency and WriteLatency add a fixed service time per IO,
	// simulating a real device. The base's multi-queue layer overlaps these
	// across workers; the shadow's synchronous path pays them serially.
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// NewFaultPlan returns a fault plan with the given deterministic seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// splitmix64 is the SplitMix64 finalizer, used to derive well-separated child
// seeds from (seed, salt) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fork returns an independent copy of the plan whose pseudo-random stream is
// seeded from (parent seed, salt). Equal (plan, salt) pairs produce equal
// streams, so a campaign that forks one template plan per device gets
// per-device fault sequences that are reproducible regardless of how many
// devices run in parallel or how their IO interleaves. The probability and
// latency knobs are copied, and the block maps are deep-copied so later
// mutation of the parent never races a child in use.
func (p *FaultPlan) Fork(salt int64) *FaultPlan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	childSeed := int64(splitmix64(uint64(p.seed) ^ splitmix64(uint64(salt))))
	cp := &FaultPlan{
		rng:             rand.New(rand.NewSource(childSeed)),
		seed:            childSeed,
		CorruptReadProb: p.CorruptReadProb,
		ReadErrProb:     p.ReadErrProb,
		WriteErrProb:    p.WriteErrProb,
		TornWriteProb:   p.TornWriteProb,
		ReadLatency:     p.ReadLatency,
		WriteLatency:    p.WriteLatency,
	}
	if p.CorruptBlocks != nil {
		cp.CorruptBlocks = make(map[uint32]bool, len(p.CorruptBlocks))
		for b, v := range p.CorruptBlocks {
			cp.CorruptBlocks[b] = v
		}
	}
	if p.ReadErrBlocks != nil {
		cp.ReadErrBlocks = make(map[uint32]bool, len(p.ReadErrBlocks))
		for b, v := range p.ReadErrBlocks {
			cp.ReadErrBlocks[b] = v
		}
	}
	return cp
}

func (p *FaultPlan) roll(prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed))
	}
	return p.rng.Float64() < prob
}

func (p *FaultPlan) pick(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed))
	}
	return p.rng.Intn(n)
}

// Mem is a memory-backed Device with fault injection, the primary substrate
// for experiments. It is safe for concurrent use.
type Mem struct {
	mu      sync.RWMutex
	blocks  [][]byte
	faults  *FaultPlan
	stats   Stats
	onWrite func(blk uint32)
}

// SetWriteHook installs a callback invoked after every successful write,
// outside the device lock. Crash-consistency harnesses use it to snapshot
// the device at every possible crash point.
func (d *Mem) SetWriteHook(f func(blk uint32)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onWrite = f
}

// NewMem creates a zero-filled in-memory device of n blocks.
func NewMem(n uint32) *Mem {
	return &Mem{blocks: make([][]byte, n)}
}

// SetFaults installs (or removes, with nil) the device's fault plan.
func (d *Mem) SetFaults(p *FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults = p
}

// Stats returns the device's traffic counters.
func (d *Mem) Stats() *Stats { return &d.stats }

// NumBlocks returns the device capacity in blocks.
func (d *Mem) NumBlocks() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return uint32(len(d.blocks))
}

// ReadBlock implements Device.
func (d *Mem) ReadBlock(blk uint32) ([]byte, error) {
	d.mu.RLock()
	faults := d.faults
	if int(blk) >= len(d.blocks) {
		d.mu.RUnlock()
		d.stats.ReadErrors.Add(1)
		return nil, fmt.Errorf("blockdev: read of block %d beyond device end %d: %w", blk, len(d.blocks), fserr.ErrIO)
	}
	buf := make([]byte, disklayout.BlockSize)
	if d.blocks[blk] != nil {
		copy(buf, d.blocks[blk])
	}
	d.mu.RUnlock()

	d.stats.Reads.Add(1)
	d.stats.ReadCalls.Add(1)
	if faults != nil {
		if faults.ReadLatency > 0 {
			time.Sleep(faults.ReadLatency)
		}
		faults.mu.Lock()
		badSector := faults.ReadErrBlocks[blk]
		faults.mu.Unlock()
		if badSector || faults.roll(faults.ReadErrProb) {
			d.stats.ReadErrors.Add(1)
			return nil, fmt.Errorf("blockdev: injected read error on block %d: %w", blk, fserr.ErrIO)
		}
		corrupt := faults.roll(faults.CorruptReadProb)
		if !corrupt {
			faults.mu.Lock()
			corrupt = faults.CorruptBlocks[blk]
			faults.mu.Unlock()
		}
		if corrupt {
			bit := faults.pick(disklayout.BlockSize * 8)
			buf[bit/8] ^= 1 << (bit % 8)
		}
	}
	return buf, nil
}

// WriteBlock implements Device.
func (d *Mem) WriteBlock(blk uint32, data []byte) error {
	if len(data) != disklayout.BlockSize {
		return fmt.Errorf("blockdev: write of %d bytes, want %d: %w", len(data), disklayout.BlockSize, fserr.ErrInvalid)
	}
	d.mu.Lock()
	faults := d.faults
	if int(blk) >= len(d.blocks) {
		d.mu.Unlock()
		d.stats.WriteErrors.Add(1)
		return fmt.Errorf("blockdev: write of block %d beyond device end %d: %w", blk, len(d.blocks), fserr.ErrIO)
	}
	if faults != nil && faults.WriteLatency > 0 {
		d.mu.Unlock()
		time.Sleep(faults.WriteLatency)
		d.mu.Lock()
		if int(blk) >= len(d.blocks) {
			d.mu.Unlock()
			return fmt.Errorf("blockdev: write of block %d beyond device end %d: %w", blk, len(d.blocks), fserr.ErrIO)
		}
	}
	if faults != nil && faults.roll(faults.WriteErrProb) {
		d.mu.Unlock()
		d.stats.WriteErrors.Add(1)
		return fmt.Errorf("blockdev: injected write error on block %d: %w", blk, fserr.ErrIO)
	}
	buf := make([]byte, disklayout.BlockSize)
	copy(buf, data)
	if faults != nil && faults.roll(faults.TornWriteProb) {
		// Persist only the first half; the rest keeps its previous contents.
		if old := d.blocks[blk]; old != nil {
			copy(buf[disklayout.BlockSize/2:], old[disklayout.BlockSize/2:])
		} else {
			for i := disklayout.BlockSize / 2; i < disklayout.BlockSize; i++ {
				buf[i] = 0
			}
		}
	}
	d.blocks[blk] = buf
	hook := d.onWrite
	d.mu.Unlock()
	d.stats.Writes.Add(1)
	d.stats.WriteCalls.Add(1)
	if hook != nil {
		hook(blk)
	}
	return nil
}

// Flush implements Device. Memory devices are always durable.
func (d *Mem) Flush() error {
	d.stats.Flushes.Add(1)
	return nil
}

// Snapshot returns a deep copy of the device contents, used by crash-
// simulation tests to capture "the disk at the moment of the crash".
func (d *Mem) Snapshot() *Mem {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := &Mem{blocks: make([][]byte, len(d.blocks))}
	for i, b := range d.blocks {
		if b != nil {
			nb := make([]byte, disklayout.BlockSize)
			copy(nb, b)
			cp.blocks[i] = nb
		}
	}
	return cp
}

// Snapshotter is implemented by devices that can produce a point-in-time
// frozen copy of their contents. The background scrubber requires it: a
// scrub pass checks a snapshot, never the live device, so it races with
// nothing and observes a single consistent image.
type Snapshotter interface {
	Device
	// SnapshotDevice returns a frozen, fault-free copy of the device
	// contents as of the call.
	SnapshotDevice() Device
}

// SnapshotDevice implements Snapshotter. The copy carries no fault plan and
// no write hook: it is an observation of the bits, not of the hardware.
func (d *Mem) SnapshotDevice() Device { return d.Snapshot() }

// CorruptBlock flips the byte at off in block blk in place, bypassing the
// write path. Tests use it to plant silent on-disk corruption.
func (d *Mem) CorruptBlock(blk uint32, off int, xor byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(blk) >= len(d.blocks) {
		return fserr.ErrInvalid
	}
	if d.blocks[blk] == nil {
		d.blocks[blk] = make([]byte, disklayout.BlockSize)
	}
	d.blocks[blk][off%disklayout.BlockSize] ^= xor
	return nil
}

// File is a file-backed Device so images created by cmd/mkfs can live on the
// host filesystem. It is safe for concurrent use.
type File struct {
	mu   sync.Mutex
	f    *os.File
	n    uint32
	stat Stats
}

// OpenFile opens (or creates, when create is true) a file-backed device of n
// blocks at path.
func OpenFile(path string, n uint32, create bool) (*File, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockdev: open %s: %w", path, err)
	}
	if create {
		if err := f.Truncate(int64(n) * disklayout.BlockSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("blockdev: truncate %s: %w", path, err)
		}
	} else {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("blockdev: stat %s: %w", path, err)
		}
		n = uint32(fi.Size() / disklayout.BlockSize)
	}
	return &File{f: f, n: n}, nil
}

// NumBlocks returns the device capacity in blocks.
func (d *File) NumBlocks() uint32 { return d.n }

// Stats returns the device's traffic counters.
func (d *File) Stats() *Stats { return &d.stat }

// ReadBlock implements Device.
func (d *File) ReadBlock(blk uint32) ([]byte, error) {
	if blk >= d.n {
		d.stat.ReadErrors.Add(1)
		return nil, fmt.Errorf("blockdev: read of block %d beyond device end %d: %w", blk, d.n, fserr.ErrIO)
	}
	buf := make([]byte, disklayout.BlockSize)
	d.mu.Lock()
	_, err := d.f.ReadAt(buf, int64(blk)*disklayout.BlockSize)
	d.mu.Unlock()
	if err != nil {
		d.stat.ReadErrors.Add(1)
		return nil, fmt.Errorf("blockdev: read block %d: %v: %w", blk, err, fserr.ErrIO)
	}
	d.stat.Reads.Add(1)
	d.stat.ReadCalls.Add(1)
	return buf, nil
}

// WriteBlock implements Device.
func (d *File) WriteBlock(blk uint32, data []byte) error {
	if len(data) != disklayout.BlockSize {
		return fmt.Errorf("blockdev: write of %d bytes, want %d: %w", len(data), disklayout.BlockSize, fserr.ErrInvalid)
	}
	if blk >= d.n {
		d.stat.WriteErrors.Add(1)
		return fmt.Errorf("blockdev: write of block %d beyond device end %d: %w", blk, d.n, fserr.ErrIO)
	}
	d.mu.Lock()
	_, err := d.f.WriteAt(data, int64(blk)*disklayout.BlockSize)
	d.mu.Unlock()
	if err != nil {
		d.stat.WriteErrors.Add(1)
		return fmt.Errorf("blockdev: write block %d: %v: %w", blk, err, fserr.ErrIO)
	}
	d.stat.Writes.Add(1)
	d.stat.WriteCalls.Add(1)
	return nil
}

// Flush implements Device.
func (d *File) Flush() error {
	d.mu.Lock()
	err := d.f.Sync()
	d.mu.Unlock()
	if err != nil {
		return fmt.Errorf("blockdev: fsync: %v: %w", err, fserr.ErrIO)
	}
	d.stat.Flushes.Add(1)
	return nil
}

// Close releases the underlying file.
func (d *File) Close() error { return d.f.Close() }

// ReadOnly wraps a Device and rejects all mutation, enforcing the shadow's
// "never writes to the disk" property (§3.2). A write through this handle is
// a bug in the shadow itself and surfaces as ErrReadOnly, which the
// supervisor reports as a shadow fault.
type ReadOnly struct {
	dev Device
}

// NewReadOnly wraps dev in a write-rejecting handle.
func NewReadOnly(dev Device) *ReadOnly { return &ReadOnly{dev: dev} }

// ReadBlock implements Device.
func (r *ReadOnly) ReadBlock(blk uint32) ([]byte, error) { return r.dev.ReadBlock(blk) }

// WriteBlock implements Device and always fails.
func (r *ReadOnly) WriteBlock(blk uint32, data []byte) error {
	return fmt.Errorf("blockdev: shadow attempted write to block %d: %w", blk, fserr.ErrReadOnly)
}

// NumBlocks implements Device.
func (r *ReadOnly) NumBlocks() uint32 { return r.dev.NumBlocks() }

// Flush implements Device and always fails: flushing is meaningless without
// writes and indicates a shadow bug.
func (r *ReadOnly) Flush() error {
	return fmt.Errorf("blockdev: shadow attempted flush: %w", fserr.ErrReadOnly)
}

// Overlay is a read-only logical view of a device with a fixed set of block
// overrides layered on top. Reads of an overridden block return the override
// (copied, so callers can never alias the overlay's memory); everything else
// passes through. Writes and flushes are rejected.
//
// The recovery engine builds one from the journal's committed-transaction
// scan: raw device + committed overlay == the post-replay image, so a reader
// holding this view observes stable logical contents even while journal
// replay is physically rewriting the same home locations underneath it.
type Overlay struct {
	dev  Device
	over map[uint32][]byte
}

// NewOverlay wraps dev with the given block overrides. The map is retained,
// not copied; callers must not mutate it afterwards.
func NewOverlay(dev Device, over map[uint32][]byte) *Overlay {
	return &Overlay{dev: dev, over: over}
}

// ReadBlock implements Device.
func (o *Overlay) ReadBlock(blk uint32) ([]byte, error) {
	if b, ok := o.over[blk]; ok {
		cp := make([]byte, disklayout.BlockSize)
		copy(cp, b)
		return cp, nil
	}
	return o.dev.ReadBlock(blk)
}

// WriteBlock implements Device and always fails.
func (o *Overlay) WriteBlock(blk uint32, data []byte) error {
	return fmt.Errorf("blockdev: write to block %d through read-only overlay: %w", blk, fserr.ErrReadOnly)
}

// NumBlocks implements Device.
func (o *Overlay) NumBlocks() uint32 { return o.dev.NumBlocks() }

// Flush implements Device and always fails.
func (o *Overlay) Flush() error {
	return fmt.Errorf("blockdev: flush through read-only overlay: %w", fserr.ErrReadOnly)
}

// Prefetched is a read-through block cache over a frozen read-only view,
// with a background crew of workers that streams the whole device into the
// cache. On a device with per-IO service time, consumers whose access
// pattern is serial blocking reads (fsck's walk, the shadow's replay) stop
// paying that latency once the prefetcher is ahead of them: the device is
// read at the parallelism of the worker crew while the consumers run at
// memory speed. Only correct over views whose logical content cannot change
// — exactly what the recovery plan's overlay construction guarantees.
//
// Safe for concurrent use. Writes and flushes are rejected (the underlying
// view is read-only by contract).
type Prefetched struct {
	dev    Device
	mu     sync.RWMutex
	blocks map[uint32][]byte

	spans   []BlockRange  // chunked work list the crew claims from
	next    atomic.Uint32 // next span index the worker crew will fetch
	stopped atomic.Bool
	done    sync.WaitGroup
}

// BlockRange is a contiguous block range [Start, Start+Len).
type BlockRange struct {
	Start, Len uint32
}

// prefetchChunk is the largest run one prefetch claim transfers. Adjacent
// blocks within a claim are read in one ranged device call rather than one
// call per block.
const prefetchChunk = 32

// NewPrefetched wraps the frozen view and starts workers background readers
// over the whole device. Callers must Release when the consumers are
// finished so the cache memory and the worker crew are reclaimed.
func NewPrefetched(dev Device, workers int) *Prefetched {
	return NewPrefetchedRanges(dev, workers, []BlockRange{{Start: 0, Len: dev.NumBlocks()}})
}

// NewPrefetchedRanges is NewPrefetched restricted to the given block ranges
// — the extent-keyed variant: a caller that knows where the live data sits
// (an extent walk, a recovery plan's touched set) prefetches exactly that,
// so the crew's IO tracks live data instead of device size. Ranges are
// clipped to the device and fetched in order; blocks outside them are still
// served by read-through.
func NewPrefetchedRanges(dev Device, workers int, ranges []BlockRange) *Prefetched {
	p := &Prefetched{dev: dev, blocks: make(map[uint32][]byte)}
	n := dev.NumBlocks()
	for _, r := range ranges {
		if r.Start >= n {
			continue
		}
		if uint64(r.Start)+uint64(r.Len) > uint64(n) {
			r.Len = n - r.Start
		}
		// Split into claim-sized spans so the crew load-balances within big
		// ranges.
		for off := uint32(0); off < r.Len; off += prefetchChunk {
			l := r.Len - off
			if l > prefetchChunk {
				l = prefetchChunk
			}
			p.spans = append(p.spans, BlockRange{Start: r.Start + off, Len: l})
		}
	}
	if workers < 1 {
		workers = 1
	}
	p.done.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.done.Done()
			for {
				i := int(p.next.Add(1)) - 1
				if i >= len(p.spans) || p.stopped.Load() {
					return
				}
				p.fetchSpan(p.spans[i])
			}
		}()
	}
	return p
}

// fetchSpan pulls one span into the cache, coalescing the blocks not yet
// cached into ranged reads. A failed ranged read falls back to per-block
// reads so one bad sector doesn't forfeit its neighbors (and consumers
// re-read and surface the error themselves, as before).
func (p *Prefetched) fetchSpan(span BlockRange) {
	missing := make([]uint32, 0, span.Len)
	p.mu.RLock()
	for b := span.Start; b < span.Start+span.Len; b++ {
		if _, have := p.blocks[b]; !have {
			missing = append(missing, b)
		}
	}
	p.mu.RUnlock()
	for i := 0; i < len(missing); {
		j := i + 1
		for j < len(missing) && missing[j] == missing[j-1]+1 {
			j++
		}
		start, count := missing[i], j-i
		backing := make([]byte, count*disklayout.BlockSize)
		bufs := make([][]byte, count)
		for k := range bufs {
			bufs[k] = backing[k*disklayout.BlockSize : (k+1)*disklayout.BlockSize]
		}
		if err := ReadVec(p.dev, []Run{{Blk: start, Bufs: bufs}}); err != nil {
			for k := 0; k < count; k++ {
				buf, err := p.dev.ReadBlock(start + uint32(k))
				if err != nil {
					continue
				}
				p.install(start+uint32(k), buf)
			}
		} else {
			for k := 0; k < count; k++ {
				p.install(start+uint32(k), bufs[k])
			}
		}
		i = j
	}
}

// install caches one fetched block unless a concurrent fetch beat it there.
func (p *Prefetched) install(blk uint32, buf []byte) {
	p.mu.Lock()
	if _, have := p.blocks[blk]; !have {
		p.blocks[blk] = buf
	}
	p.mu.Unlock()
}

// ReadBlock implements Device: cache hit or read-through (populating the
// cache, so a consumer running ahead of the prefetch crew still pays each
// block only once).
func (p *Prefetched) ReadBlock(blk uint32) ([]byte, error) {
	p.mu.RLock()
	b, ok := p.blocks[blk]
	p.mu.RUnlock()
	if ok {
		cp := make([]byte, disklayout.BlockSize)
		copy(cp, b)
		return cp, nil
	}
	buf, err := p.dev.ReadBlock(blk)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	switch {
	case p.stopped.Load():
		// Released (or racing with Release, which clears the cache under
		// this same lock): plain pass-through, no re-pinning. The stopped
		// check must happen under p.mu — checking it before acquiring the
		// lock leaves a window where Release stops the crew and clears the
		// cache, and the insert below would then repopulate the cleared map
		// and pin blocks for the holder's lifetime.
	case p.blocks[blk] != nil:
		buf = p.blocks[blk] // first fetch wins; serve the cached image
	default:
		p.blocks[blk] = buf
	}
	p.mu.Unlock()
	cp := make([]byte, disklayout.BlockSize)
	copy(cp, buf)
	return cp, nil
}

// WriteBlock implements Device and always fails.
func (p *Prefetched) WriteBlock(blk uint32, data []byte) error {
	return fmt.Errorf("blockdev: write to block %d through prefetched read-only view: %w", blk, fserr.ErrReadOnly)
}

// NumBlocks implements Device.
func (p *Prefetched) NumBlocks() uint32 { return p.dev.NumBlocks() }

// Flush implements Device and always fails.
func (p *Prefetched) Flush() error {
	return fmt.Errorf("blockdev: flush through prefetched read-only view: %w", fserr.ErrReadOnly)
}

// Cached reports how many blocks the cache currently holds.
func (p *Prefetched) Cached() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.blocks)
}

// Release stops the worker crew, waits it out, and drops the cache. Later
// reads pass straight through to the underlying view, so a long-lived
// holder (a retained warm shadow) keeps working without pinning the image.
func (p *Prefetched) Release() {
	if p == nil {
		return
	}
	p.stopped.Store(true)
	p.done.Wait()
	p.mu.Lock()
	p.blocks = make(map[uint32][]byte)
	p.mu.Unlock()
}
