package blockdev

import (
	"fmt"
	"sync"

	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Queue is the asynchronous, multi-queue block layer the base filesystem
// drives (the blk-mq analogue in Figure 2). Requests are submitted to
// per-CPU-style submission queues and completed by worker goroutines; the
// shadow never touches this path.
type Queue struct {
	dev     Device
	reqs    chan *Request
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	inFlite sync.WaitGroup

	// Telemetry for the queued path ("blockdev.queued.*"), distinguishing
	// the base's async IO machinery from the shadow's direct path. All nil
	// when telemetry is off; the instruments themselves are nil-safe.
	tel struct {
		reads, writes, flushes    *telemetry.Counter
		hRead, hWrite, hFlush     *telemetry.Histogram
	}
}

// SetTelemetry installs queued-path instrumentation ("blockdev.queued.*")
// from s. Call before submitting IO; a nil sink leaves the queue
// uninstrumented at the cost of one pointer check per request.
func (q *Queue) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	q.tel.reads = s.Counter("blockdev.queued.reads")
	q.tel.writes = s.Counter("blockdev.queued.writes")
	q.tel.flushes = s.Counter("blockdev.queued.flushes")
	q.tel.hRead = s.Histogram("blockdev.queued.read.latency")
	q.tel.hWrite = s.Histogram("blockdev.queued.write.latency")
	q.tel.hFlush = s.Histogram("blockdev.queued.flush.latency")
}

// OpKind distinguishes queued request types.
type OpKind int

// Request kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpFlush
)

// Request is one queued block IO.
type Request struct {
	Kind OpKind
	Blk  uint32
	Data []byte // payload for writes; result buffer for reads
	Err  error
	done chan struct{}
}

// Wait blocks until the request completes and returns its error.
func (r *Request) Wait() error {
	<-r.done
	return r.Err
}

// NewQueue starts a queue over dev with the given number of worker
// goroutines and queue depth.
func NewQueue(dev Device, workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 64
	}
	q := &Queue{dev: dev, reqs: make(chan *Request, depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for r := range q.reqs {
		switch r.Kind {
		case OpRead:
			t := telemetry.StartTimer(q.tel.hRead)
			r.Data, r.Err = q.dev.ReadBlock(r.Blk)
			t.Stop()
			q.tel.reads.Inc()
		case OpWrite:
			t := telemetry.StartTimer(q.tel.hWrite)
			r.Err = q.dev.WriteBlock(r.Blk, r.Data)
			t.Stop()
			q.tel.writes.Inc()
		case OpFlush:
			t := telemetry.StartTimer(q.tel.hFlush)
			r.Err = q.dev.Flush()
			t.Stop()
			q.tel.flushes.Inc()
		}
		close(r.done)
		q.inFlite.Done()
	}
}

// Submit enqueues a request; the caller later calls Wait on it. Submitting
// to a closed queue fails the request immediately.
func (q *Queue) Submit(r *Request) *Request {
	r.done = make(chan struct{})
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		r.Err = fmt.Errorf("blockdev: queue closed: %w", fserr.ErrIO)
		close(r.done)
		return r
	}
	q.inFlite.Add(1)
	q.reqs <- r
	q.mu.Unlock()
	return r
}

// Read performs a synchronous read via the queue.
func (q *Queue) Read(blk uint32) ([]byte, error) {
	r := q.Submit(&Request{Kind: OpRead, Blk: blk})
	if err := r.Wait(); err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write performs a synchronous write via the queue.
func (q *Queue) Write(blk uint32, data []byte) error {
	return q.Submit(&Request{Kind: OpWrite, Blk: blk, Data: data}).Wait()
}

// WriteAsync enqueues a write and returns without waiting; the base's
// write-back path uses this to overlap IO.
func (q *Queue) WriteAsync(blk uint32, data []byte) *Request {
	return q.Submit(&Request{Kind: OpWrite, Blk: blk, Data: data})
}

// Flush drains all in-flight requests and issues a device flush.
func (q *Queue) Flush() error {
	q.inFlite.Wait()
	r := q.Submit(&Request{Kind: OpFlush})
	return r.Wait()
}

// Close drains and stops the workers. The queue cannot be reused.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.inFlite.Wait()
	close(q.reqs)
	q.wg.Wait()
}
