package blockdev

import (
	"fmt"
	"sync"

	"repro/internal/fserr"
	"repro/internal/telemetry"
)

// Queue is the asynchronous, multi-queue block layer the base filesystem
// drives (the blk-mq analogue in Figure 2). Requests are submitted to
// per-CPU-style submission queues and completed by worker goroutines; the
// shadow never touches this path.
//
// Flush ordering uses write epochs: every request joins the current epoch at
// submission, and a flush seals the epoch, waits for it (and, transitively,
// every earlier epoch) to drain, and only then issues the device flush. A
// write submitted after the flush began is in a later epoch and is never
// waited on — it may complete before or after the flush, which is exactly
// the barrier contract: a flush covers all IO submitted before it, nothing
// more.
type Queue struct {
	dev    Device
	reqs   chan *Request
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	// epoch is the set of in-flight requests a future flush must order
	// after. Guarded by mu; swapped (never Waited under mu) by Flush.
	epoch *sync.WaitGroup

	// Telemetry for the queued path ("blockdev.queued.*"), distinguishing
	// the base's async IO machinery from the shadow's direct path. All nil
	// when telemetry is off; the instruments themselves are nil-safe.
	tel struct {
		reads, writes, flushes *telemetry.Counter
		hRead, hWrite, hFlush  *telemetry.Histogram
	}
}

// SetTelemetry installs queued-path instrumentation ("blockdev.queued.*")
// from s. Call before submitting IO; a nil sink leaves the queue
// uninstrumented at the cost of one pointer check per request.
func (q *Queue) SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	q.tel.reads = s.Counter("blockdev.queued.reads")
	q.tel.writes = s.Counter("blockdev.queued.writes")
	q.tel.flushes = s.Counter("blockdev.queued.flushes")
	q.tel.hRead = s.Histogram("blockdev.queued.read.latency")
	q.tel.hWrite = s.Histogram("blockdev.queued.write.latency")
	q.tel.hFlush = s.Histogram("blockdev.queued.flush.latency")
}

// OpKind distinguishes queued request types.
type OpKind int

// Request kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpFlush
	// OpWriteVec writes the contiguous run [Blk, Blk+len(Bufs)) in one
	// device-level call when the device supports it.
	OpWriteVec
)

// Request is one queued block IO.
type Request struct {
	Kind OpKind
	Blk  uint32
	Data []byte   // payload for writes; result buffer for reads
	Bufs [][]byte // payload run for OpWriteVec, one buffer per block
	Err  error
	done chan struct{}
	// epoch is the flush epoch this request was submitted under.
	epoch *sync.WaitGroup
}

// Wait blocks until the request completes and returns its error.
func (r *Request) Wait() error {
	<-r.done
	return r.Err
}

// NewQueue starts a queue over dev with the given number of worker
// goroutines and queue depth.
func NewQueue(dev Device, workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 64
	}
	q := &Queue{dev: dev, reqs: make(chan *Request, depth), epoch: &sync.WaitGroup{}}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for r := range q.reqs {
		switch r.Kind {
		case OpRead:
			t := telemetry.StartTimer(q.tel.hRead)
			r.Data, r.Err = q.dev.ReadBlock(r.Blk)
			t.Stop()
			q.tel.reads.Inc()
		case OpWrite:
			t := telemetry.StartTimer(q.tel.hWrite)
			r.Err = q.dev.WriteBlock(r.Blk, r.Data)
			t.Stop()
			q.tel.writes.Inc()
		case OpWriteVec:
			t := telemetry.StartTimer(q.tel.hWrite)
			r.Err = WriteVec(q.dev, []Run{{Blk: r.Blk, Bufs: r.Bufs}})
			t.Stop()
			q.tel.writes.Add(int64(len(r.Bufs)))
		case OpFlush:
			t := telemetry.StartTimer(q.tel.hFlush)
			r.Err = q.dev.Flush()
			t.Stop()
			q.tel.flushes.Inc()
		}
		close(r.done)
		r.epoch.Done()
	}
}

// Submit enqueues a request; the caller later calls Wait on it. Submitting
// to a closed queue fails the request immediately.
func (q *Queue) Submit(r *Request) *Request {
	r.done = make(chan struct{})
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		r.Err = fmt.Errorf("blockdev: queue closed: %w", fserr.ErrIO)
		close(r.done)
		return r
	}
	r.epoch = q.epoch
	r.epoch.Add(1)
	q.reqs <- r
	q.mu.Unlock()
	return r
}

// Read performs a synchronous read via the queue.
func (q *Queue) Read(blk uint32) ([]byte, error) {
	r := q.Submit(&Request{Kind: OpRead, Blk: blk})
	if err := r.Wait(); err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write performs a synchronous write via the queue.
func (q *Queue) Write(blk uint32, data []byte) error {
	return q.Submit(&Request{Kind: OpWrite, Blk: blk, Data: data}).Wait()
}

// WriteAsync enqueues a write and returns without waiting; the base's
// write-back path uses this to overlap IO.
func (q *Queue) WriteAsync(blk uint32, data []byte) *Request {
	return q.Submit(&Request{Kind: OpWrite, Blk: blk, Data: data})
}

// WriteVecAsync enqueues one contiguous run as a single request. The base's
// extent write-back turns each allocated run into one of these, so a large
// sequential sync costs a handful of queue round-trips and device calls.
func (q *Queue) WriteVecAsync(blk uint32, bufs [][]byte) *Request {
	return q.Submit(&Request{Kind: OpWriteVec, Blk: blk, Bufs: bufs})
}

// sealEpoch atomically replaces the current epoch and returns the old one,
// which from that point on can only shrink. The new epoch carries one token
// released when the old epoch drains, so a later seal transitively waits for
// every earlier epoch without keeping a list.
func (q *Queue) sealEpoch() *sync.WaitGroup {
	q.mu.Lock()
	old := q.epoch
	q.epoch = &sync.WaitGroup{}
	q.epoch.Add(1) // carry token, released once old has drained
	next := q.epoch
	q.mu.Unlock()
	go func() {
		old.Wait()
		next.Done()
	}()
	return old
}

// Flush orders after all previously submitted requests: it seals the current
// write epoch, waits for it (and all earlier epochs) to complete, then
// issues a device flush through the queue. Writes submitted concurrently
// with the flush are not covered by it and cannot make it report success
// early — the WaitGroup they join is no longer the one being waited on.
func (q *Queue) Flush() error {
	q.sealEpoch().Wait()
	r := q.Submit(&Request{Kind: OpFlush})
	return r.Wait()
}

// Close drains and stops the workers. The queue cannot be reused.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	old := q.epoch
	q.epoch = &sync.WaitGroup{} // closed: no new members
	q.mu.Unlock()
	old.Wait()
	close(q.reqs)
	q.wg.Wait()
}

// QueueDevice adapts a Queue to the synchronous Device interface so
// components written against Device (the journal) drive their IO through
// the base's async block layer: writes overlap across workers, and every
// flush is counted by the queued-path telemetry.
type QueueDevice struct {
	q *Queue
	n uint32
}

// Device returns a synchronous Device view of the queue.
func (q *Queue) Device() *QueueDevice {
	return &QueueDevice{q: q, n: q.dev.NumBlocks()}
}

// ReadBlock implements Device.
func (d *QueueDevice) ReadBlock(blk uint32) ([]byte, error) { return d.q.Read(blk) }

// WriteBlock implements Device.
func (d *QueueDevice) WriteBlock(blk uint32, data []byte) error { return d.q.Write(blk, data) }

// NumBlocks implements Device.
func (d *QueueDevice) NumBlocks() uint32 { return d.n }

// Flush implements Device.
func (d *QueueDevice) Flush() error { return d.q.Flush() }

// WriteAsync exposes the queue's asynchronous write so Device consumers that
// know about the queue (the journal's batch commit) can overlap payload
// writes instead of serializing them.
func (d *QueueDevice) WriteAsync(blk uint32, data []byte) *Request {
	return d.q.WriteAsync(blk, data)
}

// AsyncWriter is implemented by devices that can overlap writes; callers
// fall back to synchronous WriteBlock when the assertion fails.
type AsyncWriter interface {
	WriteAsync(blk uint32, data []byte) *Request
}
