package blockdev

import (
	"fmt"
	"sync"

	"repro/internal/fserr"
)

// Queue is the asynchronous, multi-queue block layer the base filesystem
// drives (the blk-mq analogue in Figure 2). Requests are submitted to
// per-CPU-style submission queues and completed by worker goroutines; the
// shadow never touches this path.
type Queue struct {
	dev     Device
	reqs    chan *Request
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	inFlite sync.WaitGroup
}

// OpKind distinguishes queued request types.
type OpKind int

// Request kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpFlush
)

// Request is one queued block IO.
type Request struct {
	Kind OpKind
	Blk  uint32
	Data []byte // payload for writes; result buffer for reads
	Err  error
	done chan struct{}
}

// Wait blocks until the request completes and returns its error.
func (r *Request) Wait() error {
	<-r.done
	return r.Err
}

// NewQueue starts a queue over dev with the given number of worker
// goroutines and queue depth.
func NewQueue(dev Device, workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 64
	}
	q := &Queue{dev: dev, reqs: make(chan *Request, depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for r := range q.reqs {
		switch r.Kind {
		case OpRead:
			r.Data, r.Err = q.dev.ReadBlock(r.Blk)
		case OpWrite:
			r.Err = q.dev.WriteBlock(r.Blk, r.Data)
		case OpFlush:
			r.Err = q.dev.Flush()
		}
		close(r.done)
		q.inFlite.Done()
	}
}

// Submit enqueues a request; the caller later calls Wait on it. Submitting
// to a closed queue fails the request immediately.
func (q *Queue) Submit(r *Request) *Request {
	r.done = make(chan struct{})
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		r.Err = fmt.Errorf("blockdev: queue closed: %w", fserr.ErrIO)
		close(r.done)
		return r
	}
	q.inFlite.Add(1)
	q.reqs <- r
	q.mu.Unlock()
	return r
}

// Read performs a synchronous read via the queue.
func (q *Queue) Read(blk uint32) ([]byte, error) {
	r := q.Submit(&Request{Kind: OpRead, Blk: blk})
	if err := r.Wait(); err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write performs a synchronous write via the queue.
func (q *Queue) Write(blk uint32, data []byte) error {
	return q.Submit(&Request{Kind: OpWrite, Blk: blk, Data: data}).Wait()
}

// WriteAsync enqueues a write and returns without waiting; the base's
// write-back path uses this to overlap IO.
func (q *Queue) WriteAsync(blk uint32, data []byte) *Request {
	return q.Submit(&Request{Kind: OpWrite, Blk: blk, Data: data})
}

// Flush drains all in-flight requests and issues a device flush.
func (q *Queue) Flush() error {
	q.inFlite.Wait()
	r := q.Submit(&Request{Kind: OpFlush})
	return r.Wait()
}

// Close drains and stops the workers. The queue cannot be reused.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	q.inFlite.Wait()
	close(q.reqs)
	q.wg.Wait()
}
