package blockdev

import "repro/internal/telemetry"

// Instrumented wraps a Device and counts/times every transfer under a named
// IO path. The supervisor wraps the shadow's device handle with path
// "shadow" so snapshots show the base's async queued traffic
// ("blockdev.queued.*") and the shadow's synchronous direct traffic
// ("blockdev.shadow.*") as the distinct IO machineries of Figure 2.
type Instrumented struct {
	dev                    Device
	reads, writes, flushes *telemetry.Counter
	hRead, hWrite, hFlush  *telemetry.Histogram
}

var _ Device = (*Instrumented)(nil)

// Instrument wraps dev with per-path telemetry. With a nil sink the device
// is returned unwrapped, so the disabled path costs nothing at all.
func Instrument(dev Device, s *telemetry.Sink, path string) Device {
	if s == nil {
		return dev
	}
	prefix := "blockdev." + path + "."
	return &Instrumented{
		dev:     dev,
		reads:   s.Counter(prefix + "reads"),
		writes:  s.Counter(prefix + "writes"),
		flushes: s.Counter(prefix + "flushes"),
		hRead:   s.Histogram(prefix + "read.latency"),
		hWrite:  s.Histogram(prefix + "write.latency"),
		hFlush:  s.Histogram(prefix + "flush.latency"),
	}
}

// ReadBlock implements Device.
func (d *Instrumented) ReadBlock(blk uint32) ([]byte, error) {
	t := telemetry.StartTimer(d.hRead)
	b, err := d.dev.ReadBlock(blk)
	t.Stop()
	d.reads.Inc()
	return b, err
}

// WriteBlock implements Device.
func (d *Instrumented) WriteBlock(blk uint32, data []byte) error {
	t := telemetry.StartTimer(d.hWrite)
	err := d.dev.WriteBlock(blk, data)
	t.Stop()
	d.writes.Inc()
	return err
}

// NumBlocks implements Device.
func (d *Instrumented) NumBlocks() uint32 { return d.dev.NumBlocks() }

// Flush implements Device.
func (d *Instrumented) Flush() error {
	t := telemetry.StartTimer(d.hFlush)
	err := d.dev.Flush()
	t.Stop()
	d.flushes.Inc()
	return err
}
