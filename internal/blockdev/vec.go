package blockdev

// Vectored multi-run IO. A Run is one contiguous block range transferred in
// a single device-level call — the syscall-coalescing primitive under the
// extent data path: the base filesystem turns each allocated extent run into
// one Run, so a 4 MiB sequential write costs a handful of device calls
// instead of a thousand.
//
// Fault semantics are per block within a run: the deterministic block maps
// (ReadErrBlocks, CorruptBlocks) and the probabilistic error/corruption
// rolls fire for every block exactly as they would under per-block IO, so a
// fault campaign observes the same fault surface whichever path the
// filesystem takes. Only the fixed per-IO service latency is charged once
// per run — that is the physical effect vectoring exists to buy. A write
// error mid-run leaves the blocks before it persisted (a torn multi-block
// transfer), and Mem's write hook still fires once per block so crash-point
// enumeration keeps seeing every write.

import (
	"fmt"
	"time"

	"repro/internal/disklayout"
	"repro/internal/fserr"
)

// Run names a contiguous block range [Blk, Blk+len(Bufs)) with one
// BlockSize buffer per block. For reads the caller allocates the buffers
// (typically slices of one backing array) and the device fills them; for
// writes they are the payload.
type Run struct {
	Blk  uint32
	Bufs [][]byte
}

// VecReader is implemented by devices that can read a multi-block run in
// one device-level call.
type VecReader interface {
	ReadVec(runs []Run) error
}

// VecWriter is implemented by devices that can write a multi-block run in
// one device-level call.
type VecWriter interface {
	WriteVec(runs []Run) error
}

// ReadVec reads every run from dev, using the device's vectored path when it
// has one and falling back to per-block reads otherwise. Buffers must be
// pre-allocated BlockSize slices.
func ReadVec(dev Device, runs []Run) error {
	if vr, ok := dev.(VecReader); ok {
		return vr.ReadVec(runs)
	}
	for _, r := range runs {
		for i, buf := range r.Bufs {
			b, err := dev.ReadBlock(r.Blk + uint32(i))
			if err != nil {
				return err
			}
			copy(buf, b)
		}
	}
	return nil
}

// WriteVec writes every run to dev, vectored when possible.
func WriteVec(dev Device, runs []Run) error {
	if vw, ok := dev.(VecWriter); ok {
		return vw.WriteVec(runs)
	}
	for _, r := range runs {
		for i, buf := range r.Bufs {
			if err := dev.WriteBlock(r.Blk+uint32(i), buf); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateRun(r Run, numBlocks uint32) error {
	if len(r.Bufs) == 0 {
		return fmt.Errorf("blockdev: empty run at block %d: %w", r.Blk, fserr.ErrInvalid)
	}
	if end := uint64(r.Blk) + uint64(len(r.Bufs)); end > uint64(numBlocks) {
		return fmt.Errorf("blockdev: run [%d,%d) beyond device end %d: %w", r.Blk, end, numBlocks, fserr.ErrIO)
	}
	for _, b := range r.Bufs {
		if len(b) != disklayout.BlockSize {
			return fmt.Errorf("blockdev: run buffer of %d bytes, want %d: %w", len(b), disklayout.BlockSize, fserr.ErrInvalid)
		}
	}
	return nil
}

// ReadVec implements VecReader: one counted device call per run, per-block
// fault rolls, run-level service latency.
func (d *Mem) ReadVec(runs []Run) error {
	for _, r := range runs {
		d.mu.RLock()
		faults := d.faults
		n := uint32(len(d.blocks))
		d.mu.RUnlock()
		if err := validateRun(r, n); err != nil {
			d.stats.ReadErrors.Add(1)
			return err
		}
		d.stats.ReadCalls.Add(1)
		if faults != nil && faults.ReadLatency > 0 {
			time.Sleep(faults.ReadLatency)
		}
		d.mu.RLock()
		for i, buf := range r.Bufs {
			if src := d.blocks[r.Blk+uint32(i)]; src != nil {
				copy(buf, src)
			} else {
				for j := range buf {
					buf[j] = 0
				}
			}
		}
		d.mu.RUnlock()
		d.stats.Reads.Add(int64(len(r.Bufs)))
		if faults != nil {
			for i, buf := range r.Bufs {
				blk := r.Blk + uint32(i)
				faults.mu.Lock()
				badSector := faults.ReadErrBlocks[blk]
				faults.mu.Unlock()
				if badSector || faults.roll(faults.ReadErrProb) {
					d.stats.ReadErrors.Add(1)
					return fmt.Errorf("blockdev: injected read error on block %d: %w", blk, fserr.ErrIO)
				}
				corrupt := faults.roll(faults.CorruptReadProb)
				if !corrupt {
					faults.mu.Lock()
					corrupt = faults.CorruptBlocks[blk]
					faults.mu.Unlock()
				}
				if corrupt {
					bit := faults.pick(disklayout.BlockSize * 8)
					buf[bit/8] ^= 1 << (bit % 8)
				}
			}
		}
	}
	return nil
}

// WriteVec implements VecWriter: one counted device call per run, per-block
// fault rolls and write hooks, run-level service latency. An error mid-run
// persists the blocks before it.
func (d *Mem) WriteVec(runs []Run) error {
	for _, r := range runs {
		d.mu.RLock()
		faults := d.faults
		n := uint32(len(d.blocks))
		d.mu.RUnlock()
		if err := validateRun(r, n); err != nil {
			d.stats.WriteErrors.Add(1)
			return err
		}
		d.stats.WriteCalls.Add(1)
		if faults != nil && faults.WriteLatency > 0 {
			time.Sleep(faults.WriteLatency)
		}
		for i, data := range r.Bufs {
			blk := r.Blk + uint32(i)
			if faults != nil && faults.roll(faults.WriteErrProb) {
				d.stats.WriteErrors.Add(1)
				return fmt.Errorf("blockdev: injected write error on block %d: %w", blk, fserr.ErrIO)
			}
			buf := make([]byte, disklayout.BlockSize)
			copy(buf, data)
			d.mu.Lock()
			if faults != nil && faults.roll(faults.TornWriteProb) {
				if old := d.blocks[blk]; old != nil {
					copy(buf[disklayout.BlockSize/2:], old[disklayout.BlockSize/2:])
				} else {
					for j := disklayout.BlockSize / 2; j < disklayout.BlockSize; j++ {
						buf[j] = 0
					}
				}
			}
			d.blocks[blk] = buf
			hook := d.onWrite
			d.mu.Unlock()
			d.stats.Writes.Add(1)
			if hook != nil {
				hook(blk)
			}
		}
	}
	return nil
}

// ReadVec implements VecReader with one pread-equivalent per run.
func (d *File) ReadVec(runs []Run) error {
	for _, r := range runs {
		if err := validateRun(r, d.n); err != nil {
			d.stat.ReadErrors.Add(1)
			return err
		}
		flat := make([]byte, len(r.Bufs)*disklayout.BlockSize)
		d.mu.Lock()
		_, err := d.f.ReadAt(flat, int64(r.Blk)*disklayout.BlockSize)
		d.mu.Unlock()
		d.stat.ReadCalls.Add(1)
		if err != nil {
			d.stat.ReadErrors.Add(1)
			return fmt.Errorf("blockdev: read run [%d,+%d): %v: %w", r.Blk, len(r.Bufs), err, fserr.ErrIO)
		}
		for i, buf := range r.Bufs {
			copy(buf, flat[i*disklayout.BlockSize:])
		}
		d.stat.Reads.Add(int64(len(r.Bufs)))
	}
	return nil
}

// WriteVec implements VecWriter with one pwrite-equivalent per run.
func (d *File) WriteVec(runs []Run) error {
	for _, r := range runs {
		if err := validateRun(r, d.n); err != nil {
			d.stat.WriteErrors.Add(1)
			return err
		}
		flat := make([]byte, len(r.Bufs)*disklayout.BlockSize)
		for i, buf := range r.Bufs {
			copy(flat[i*disklayout.BlockSize:], buf)
		}
		d.mu.Lock()
		_, err := d.f.WriteAt(flat, int64(r.Blk)*disklayout.BlockSize)
		d.mu.Unlock()
		d.stat.WriteCalls.Add(1)
		if err != nil {
			d.stat.WriteErrors.Add(1)
			return fmt.Errorf("blockdev: write run [%d,+%d): %v: %w", r.Blk, len(r.Bufs), err, fserr.ErrIO)
		}
		d.stat.Writes.Add(int64(len(r.Bufs)))
	}
	return nil
}

// ReadVec implements VecReader by delegating; the read-only wrapper adds no
// block-level behavior.
func (r *ReadOnly) ReadVec(runs []Run) error { return ReadVec(r.dev, runs) }

// ReadVec implements VecReader: contiguous sub-runs of non-overridden blocks
// delegate to the underlying device in single calls; overridden blocks are
// served from the overlay.
func (o *Overlay) ReadVec(runs []Run) error {
	for _, r := range runs {
		i := 0
		for i < len(r.Bufs) {
			blk := r.Blk + uint32(i)
			if b, ok := o.over[blk]; ok {
				copy(r.Bufs[i], b)
				i++
				continue
			}
			j := i + 1
			for j < len(r.Bufs) {
				if _, ok := o.over[r.Blk+uint32(j)]; ok {
					break
				}
				j++
			}
			if err := ReadVec(o.dev, []Run{{Blk: blk, Bufs: r.Bufs[i:j]}}); err != nil {
				return err
			}
			i = j
		}
	}
	return nil
}
