package blockdev

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fserr"
)

// TestPrefetchedServesAndCaches: blocks come back with the device's content,
// and a block read twice hits the device once.
func TestPrefetchedServesAndCaches(t *testing.T) {
	dev := NewMem(64)
	buf := make([]byte, 4096)
	buf[0] = 0xAB
	if err := dev.WriteBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	p := NewPrefetched(dev, 2)
	defer p.Release()
	for i := 0; i < 2; i++ {
		b, err := p.ReadBlock(7)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != 0xAB {
			t.Fatalf("read %d: got %x", i, b[0])
		}
	}
	// Writes and flushes are rejected: the view is frozen by contract.
	if err := p.WriteBlock(1, buf); err == nil {
		t.Error("write through prefetched view succeeded")
	}
	if err := p.Flush(); err == nil {
		t.Error("flush through prefetched view succeeded")
	}
}

// TestPrefetchedReleaseOnEarlyAbort is the regression test for the pipeline
// abort leak: Release fired while the worker crew is mid-device (the recovery
// pipeline bailing out of replay early) must stop and join every worker and
// drop the cache, even with a slow device keeping workers parked in reads.
func TestPrefetchedReleaseOnEarlyAbort(t *testing.T) {
	dev := NewMem(4096)
	plan := NewFaultPlan(1)
	plan.ReadLatency = 200 * time.Microsecond
	dev.SetFaults(plan)

	before := runtime.NumGoroutine()
	p := NewPrefetched(dev, 8)
	// Abort early: the crew has had no chance to finish 4096 slow reads.
	p.Release()

	if n := p.Cached(); n != 0 {
		t.Errorf("%d blocks still pinned after Release", n)
	}
	// The crew must be joined, not leaked. Allow the runtime a moment to
	// retire the exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines: %d before, %d after Release", before, after)
	}
}

// TestPrefetchedNoRepinAfterRelease closes the race the stopped-flag check
// under p.mu exists for: a consumer read in flight across Release must not
// re-insert its block into the cleared cache and pin it forever.
func TestPrefetchedNoRepinAfterRelease(t *testing.T) {
	dev := NewMem(256)
	p := NewPrefetched(dev, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := p.ReadBlock(uint32((i*7 + w) % 256)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	p.Release()
	// Readers keep hammering the released cache for a while; nothing they do
	// may repopulate it.
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := p.Cached(); n != 0 {
		t.Errorf("%d blocks re-pinned by in-flight reads after Release", n)
	}
}

// TestFaultPlanReadErrBlocks: per-block deterministic read errors fire on
// exactly the listed blocks, every time, and leave the rest alone.
func TestFaultPlanReadErrBlocks(t *testing.T) {
	dev := NewMem(16)
	plan := NewFaultPlan(99)
	plan.ReadErrBlocks = map[uint32]bool{3: true, 9: true}
	dev.SetFaults(plan)
	for i := 0; i < 3; i++ { // deterministic: not a probability roll
		for blk := uint32(0); blk < 16; blk++ {
			_, err := dev.ReadBlock(blk)
			if want := plan.ReadErrBlocks[blk]; want && err == nil {
				t.Errorf("pass %d: block %d read succeeded, want error", i, blk)
			} else if !want && err != nil {
				t.Errorf("pass %d: block %d: %v", i, blk, err)
			}
		}
	}
	if got := dev.Stats().ReadErrors.Load(); got != 6 {
		t.Errorf("ReadErrors = %d, want 6", got)
	}
	// Writes are unaffected.
	if err := dev.WriteBlock(3, make([]byte, 4096)); err != nil {
		t.Errorf("write to read-err block: %v", err)
	}
	if _, err := dev.ReadBlock(3); !errors.Is(err, fserr.ErrIO) {
		t.Errorf("injected error not fserr.ErrIO: %v", err)
	}
}

// TestPrefetchedCoalescesRangedReads is the regression test for per-block
// prefetch: the crew must pull each claim-sized span in one ranged device
// call, so filling a 128-block device costs NumBlocks/prefetchChunk read
// calls, not NumBlocks. (Before coalescing, every prefetched block was a
// separate ReadAt-equivalent, visible as 128 ReadCalls here.)
func TestPrefetchedCoalescesRangedReads(t *testing.T) {
	const blocks = 128
	dev := NewMem(blocks)
	for blk := uint32(0); blk < blocks; blk++ {
		buf := make([]byte, 4096)
		buf[0] = byte(blk)
		if err := dev.WriteBlock(blk, buf); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Stats().ReadCalls.Load()
	p := NewPrefetched(dev, 2)
	p.done.Wait() // crew has drained every span
	calls := dev.Stats().ReadCalls.Load() - before
	want := int64(blocks / prefetchChunk)
	if calls != want {
		t.Errorf("prefetch of %d blocks used %d device read calls, want %d (one per %d-block span)",
			blocks, calls, want, prefetchChunk)
	}
	if got := dev.Stats().Reads.Load(); got < blocks {
		t.Errorf("blocks transferred = %d, want >= %d", got, blocks)
	}
	// The cache really holds the device's content: spot-check, then confirm
	// no further device calls were needed.
	for _, blk := range []uint32{0, 31, 32, 127} {
		b, err := p.ReadBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(blk) {
			t.Errorf("block %d content = %x, want %x", blk, b[0], byte(blk))
		}
	}
	if got := dev.Stats().ReadCalls.Load() - before; got != calls {
		t.Errorf("cache hits touched the device: calls went %d -> %d", calls, got)
	}
	p.Release()
}
