package blockdev

import (
	"testing"
	"time"

	"repro/internal/disklayout"
)

// TestQueueOverlapsDeviceLatency is the architectural point of the async
// block layer (blk-mq in Figure 2): with per-IO device latency, issuing N
// independent writes through the queue's workers takes ~N/workers service
// times, while the synchronous path pays all N serially.
func TestQueueOverlapsDeviceLatency(t *testing.T) {
	const n = 16
	const lat = 2 * time.Millisecond

	mkDev := func() *Mem {
		d := NewMem(64)
		p := NewFaultPlan(1)
		p.WriteLatency = lat
		d.SetFaults(p)
		return d
	}
	buf := make([]byte, disklayout.BlockSize)

	// Synchronous path: serial.
	dev := mkDev()
	start := time.Now()
	for i := uint32(0); i < n; i++ {
		if err := dev.WriteBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	serial := time.Since(start)

	// Queued path: 8 workers overlap.
	dev2 := mkDev()
	q := NewQueue(dev2, 8, 32)
	defer q.Close()
	start = time.Now()
	var reqs []*Request
	for i := uint32(0); i < n; i++ {
		reqs = append(reqs, q.WriteAsync(i, buf))
	}
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	overlapped := time.Since(start)

	if serial < n*lat {
		t.Fatalf("serial path too fast: %v", serial)
	}
	if overlapped*3 > serial {
		t.Errorf("queue did not overlap latency: serial %v, queued %v", serial, overlapped)
	}
}
