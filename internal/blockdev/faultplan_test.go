package blockdev

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/disklayout"
)

// TestFaultPlanSharedAcrossDevicesRace is the -race regression for the
// parallel torture campaign: one fault plan shared across many devices, all
// probability knobs armed, hammered from concurrent goroutines. Every draw
// from the plan's pseudo-random stream and every block-map lookup must go
// through the plan's mutex; before that guard existed this test tripped the
// race detector on rand.Rand's internal state.
func TestFaultPlanSharedAcrossDevicesRace(t *testing.T) {
	plan := NewFaultPlan(42)
	plan.CorruptReadProb = 0.2
	plan.ReadErrProb = 0.2
	plan.WriteErrProb = 0.2
	plan.TornWriteProb = 0.2
	plan.CorruptBlocks = map[uint32]bool{3: true}
	plan.ReadErrBlocks = map[uint32]bool{5: true}

	const devices = 8
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		dev := NewMem(16)
		dev.SetFaults(plan)
		wg.Add(1)
		go func(dev *Mem) {
			defer wg.Done()
			buf := make([]byte, disklayout.BlockSize)
			for i := 0; i < 200; i++ {
				blk := uint32(i % 16)
				_ = dev.WriteBlock(blk, buf)
				_, _ = dev.ReadBlock(blk)
			}
		}(dev)
	}
	wg.Wait()
}

// TestFaultPlanForkIndependentStreams proves the campaign's reproducibility
// property: a forked plan's fault stream depends only on (parent seed, salt),
// not on what any sibling device does concurrently or before it.
func TestFaultPlanForkIndependentStreams(t *testing.T) {
	faultString := func(p *FaultPlan, n int) string {
		dev := NewMem(8)
		dev.SetFaults(p)
		buf := make([]byte, disklayout.BlockSize)
		var out []byte
		for i := 0; i < n; i++ {
			if err := dev.WriteBlock(uint32(i%8), buf); err != nil {
				out = append(out, 'W')
			}
			if _, err := dev.ReadBlock(uint32(i % 8)); err != nil {
				out = append(out, 'R')
			} else {
				out = append(out, '.')
			}
		}
		return string(out)
	}

	mk := func() *FaultPlan {
		p := NewFaultPlan(7)
		p.ReadErrProb = 0.3
		p.WriteErrProb = 0.3
		return p
	}

	// Same parent, same salt → identical stream.
	a := faultString(mk().Fork(1), 100)
	b := faultString(mk().Fork(1), 100)
	if a != b {
		t.Fatalf("fork(1) streams differ:\n%s\n%s", a, b)
	}

	// Draining the parent (or a sibling fork) must not perturb the child.
	parent := mk()
	sibling := parent.Fork(2)
	_ = faultString(sibling, 500)
	for i := 0; i < 100; i++ {
		parent.roll(0.5)
	}
	c := faultString(parent.Fork(1), 100)
	if a != c {
		t.Fatalf("fork(1) stream perturbed by parent/sibling activity:\n%s\n%s", a, c)
	}

	// Different salts → different streams (with these probabilities a 100-op
	// collision is astronomically unlikely).
	d := faultString(mk().Fork(2), 100)
	if a == d {
		t.Fatalf("fork(1) and fork(2) produced identical streams")
	}
}

// TestFaultPlanForkCopiesMaps guards the deep copy: mutating the parent's
// block maps after forking must not affect (or race) the child.
func TestFaultPlanForkCopiesMaps(t *testing.T) {
	p := NewFaultPlan(1)
	p.ReadErrBlocks = map[uint32]bool{2: true}
	child := p.Fork(9)
	p.ReadErrBlocks[3] = true // parent-only mutation

	dev := NewMem(8)
	dev.SetFaults(child)
	if _, err := dev.ReadBlock(2); err == nil {
		t.Fatal("forked plan lost ReadErrBlocks entry")
	}
	if _, err := dev.ReadBlock(3); err != nil {
		t.Fatalf("forked plan picked up post-fork parent mutation: %v", err)
	}

	// Zero-value parent: Fork still yields a usable independent plan.
	var zp FaultPlan
	zc := zp.Fork(4)
	if zc == nil {
		t.Fatal("fork of zero-value plan returned nil")
	}
	dev2 := NewMem(8)
	dev2.SetFaults(zc)
	if _, err := dev2.ReadBlock(1); err != nil {
		t.Fatalf("zero-value fork injected unexpected fault: %v", err)
	}
	if err := dev2.WriteBlock(1, bytes.Repeat([]byte{1}, disklayout.BlockSize)); err != nil {
		t.Fatalf("zero-value fork injected unexpected write fault: %v", err)
	}
}
