package shadowfs

import (
	"errors"
	"testing"

	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// Robustness tests for the shadow's constrained-mode validation: recorded
// sequences that lie must be rejected or reported, never silently applied.

func TestReplayRejectsRecordedFDCollision(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	recorded := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/a", Perm: 0o644, RetFD: 0, RetIno: 2},
		// A second create claiming the same descriptor number: impossible.
		{Kind: oplog.KCreate, Path: "/b", Perm: 0o644, RetFD: 0, RetIno: 3},
	}
	res, err := s.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err == nil && len(res.Discrepancies) == 0 {
		t.Fatal("duplicate recorded fd accepted silently")
	}
}

func TestReplayRejectsDuplicateStableFD(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	// Two entries for fd 3 cannot arrive via the map type; instead check the
	// ino-validation path with inode 0.
	_, err := s.Replay(ReplayInput{BaseFDs: map[fsapi.FD]uint32{3: 0}})
	if !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("fd to inode 0: %v", err)
	}
}

func TestReplayCountsOverlay(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	recorded := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/f", Perm: 0o644, RetFD: 0, RetIno: 2},
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: make([]byte, 2*disklayout.BlockSize), RetN: 2 * disklayout.BlockSize},
	}
	res, err := s.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlayBlocks != len(res.Update.Blocks) || res.OverlayBlocks < 4 {
		// ≥ 2 data + inode table + bitmaps + root dir block
		t.Errorf("OverlayBlocks = %d (update has %d)", res.OverlayBlocks, len(res.Update.Blocks))
	}
}

func TestShadowRejectsWriteToFreeBlockRegression(t *testing.T) {
	// freeBlock on an already-free block must be caught (double free).
	s, _, sb := freshShadow(t, 4096)
	if err := s.freeBlock(sb.DataStart + 5); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("double free: %v", err)
	}
	// Freeing a metadata block is equally forbidden.
	if err := s.freeBlock(1); !errors.Is(err, fserr.ErrCorrupt) {
		t.Errorf("metadata free: %v", err)
	}
}

func TestShadowFsyncValidatesDescriptor(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	if err := s.Fsync(9); !errors.Is(err, fserr.ErrBadFD) {
		t.Errorf("fsync bad fd: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("sync: %v", err)
	}
}

func TestShadowSequentialFDPinning(t *testing.T) {
	// Constrained fd pinning: the recorded fd wins even when lower numbers
	// are free, because the application saw that number.
	s, _, _ := freshShadow(t, 4096)
	recorded := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/x", Perm: 0o644, RetFD: 5, RetIno: 2},
	}
	res, err := s.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Update.FDs) != 1 || res.Update.FDs[0].FD != 5 {
		t.Errorf("fd table = %+v, want pinned fd 5", res.Update.FDs)
	}
}
