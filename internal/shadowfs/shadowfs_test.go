package shadowfs

import (
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
	"repro/internal/workload"
)

func freshShadow(t *testing.T, blocks uint32) (*Shadow, *blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(blocks)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 1024, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, dev, sb
}

// TestShadowMatchesModelAcrossWorkloads is the shadow's verification
// obligation in this reproduction: for every workload profile, the shadow's
// API outcomes and final state must equal the executable specification's.
func TestShadowMatchesModelAcrossWorkloads(t *testing.T) {
	for _, profile := range workload.Profiles() {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(profile.String()+"-"+string(rune('0'+seed)), func(t *testing.T) {
				s, _, sb := freshShadow(t, 16384)
				trace := workload.Generate(workload.Config{
					Profile: profile, Seed: seed, NumOps: 800, Superblock: sb,
				})
				disc, err := difftest.VerifyEquivalence(s, model.New(sb), trace)
				if err != nil {
					t.Fatalf("equivalence run failed: %v", err)
				}
				for i, d := range disc {
					if i >= 10 {
						t.Errorf("... and %d more", len(disc)-10)
						break
					}
					t.Errorf("discrepancy: %s", d)
				}
			})
		}
	}
}

func TestShadowMatchesModelUnderENOSPC(t *testing.T) {
	dev := blockdev.NewMem(400)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 64, JournalBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.DataHeavy, Seed: 99, NumOps: 600, Superblock: sb,
	})
	disc, err := difftest.VerifyEquivalence(s, model.New(sb), trace)
	if err != nil {
		t.Fatalf("equivalence run failed: %v", err)
	}
	for i, d := range disc {
		if i >= 10 {
			break
		}
		t.Errorf("discrepancy: %s", d)
	}
}

// TestShadowNeverWritesDevice enforces the defining property: however much
// work the shadow does, device write and flush counts stay zero.
func TestShadowNeverWritesDevice(t *testing.T) {
	s, dev, sb := freshShadow(t, 16384)
	before := dev.Stats().Snapshot()
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: 5, NumOps: 1000, Superblock: sb,
	})
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(s, o)
	}
	after := dev.Stats().Snapshot()
	if after.Writes != before.Writes || after.Flushes != before.Flushes {
		t.Fatalf("shadow wrote to the device: writes %d -> %d, flushes %d -> %d",
			before.Writes, after.Writes, before.Flushes, after.Flushes)
	}
	if s.ChecksRun() == 0 {
		t.Error("shadow ran zero checks over a 1000-op workload")
	}
}

func TestShadowRejectsCorruptImage(t *testing.T) {
	_, dev, sb := freshShadow(t, 4096)
	// Corrupt the root inode's pointer area and re-checksum, a crafted-image
	// attack fsck must catch before the shadow executes anything.
	blk, off := sb.InodeLoc(sb.RootIno)
	b, _ := dev.ReadBlock(blk)
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		t.Fatal(err)
	}
	rec.Direct[0] = 1 // metadata block as dir data
	rec.Size = disklayout.BlockSize
	disklayout.PutInode(b[off:], rec)
	if err := dev.WriteBlock(blk, b); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, Options{}); !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("New on crafted image: %v, want ErrCorrupt", err)
	}
}

func TestShadowDetectsBitflipDuringExecution(t *testing.T) {
	s, dev, _ := freshShadow(t, 4096)
	fd, err := s.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt(fd, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in an inode table block the shadow has NOT overlaid, then
	// force a fresh read of it: the per-read checksum must catch it.
	s2, err := New(dev, Options{SkipFsck: true})
	if err != nil {
		t.Fatal(err)
	}
	sb := s2.sb
	blk, off := sb.InodeLoc(sb.RootIno)
	if err := dev.CorruptBlock(blk, off+40, 0x10); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Stat("/"); !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("Stat over corrupted inode table: %v, want ErrCorrupt", err)
	}
}

// replayFixture builds a recorded sequence by executing a workload on the
// model over a fresh image's geometry, then has a shadow replay it in
// constrained mode.
func TestShadowReplayConstrainedReproducesState(t *testing.T) {
	s, _, sb := freshShadow(t, 16384)
	m := model.New(sb)
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: 21, NumOps: 500, Superblock: sb,
	})
	// The trace's outcomes came from the generator's own model; re-apply to
	// m so we have a final-state oracle.
	recorded := make([]*oplog.Op, 0, len(trace))
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(m, o)
		if o.Kind.Mutating() {
			recorded = append(recorded, o)
		}
	}
	res, err := s.Replay(ReplayInput{
		Ops:               recorded,
		BaseFDs:           map[fsapi.FD]uint32{},
		StartClock:        0,
		StopOnDiscrepancy: true,
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(res.Discrepancies) != 0 {
		for _, d := range res.Discrepancies {
			t.Errorf("discrepancy: %s", d)
		}
	}
	if res.Update == nil {
		t.Fatal("no update produced")
	}
	if err := res.Update.Verify(); err != nil {
		t.Fatalf("update failed verification: %v", err)
	}
	// The shadow's post-replay state must equal the model's final state.
	gotState, err := difftest.DumpState(s)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := difftest.DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range difftest.CompareStates(gotState, wantState) {
		if i >= 10 {
			break
		}
		t.Errorf("state discrepancy: %s", d)
	}
	// Descriptor tables must agree too.
	wantFDs := m.OpenFDs()
	gotFDs := res.Update.FDs
	if len(wantFDs) != len(gotFDs) {
		t.Fatalf("fd tables differ: shadow %d, model %d", len(gotFDs), len(wantFDs))
	}
	for i, fd := range wantFDs {
		if gotFDs[i].FD != fd {
			t.Errorf("fd[%d] = %d, want %d", i, gotFDs[i].FD, fd)
		}
	}
}

func TestShadowReplaySkipsFailedOpsButAppliesShortWrites(t *testing.T) {
	s, _, _ := freshShadow(t, 16384)
	recorded := []*oplog.Op{
		{Kind: oplog.KCreate, Path: "/a", Perm: 0o644, RetFD: 0, RetIno: 2},
		// A failed create (EEXIST in the base) must be skipped, not re-run.
		{Kind: oplog.KCreate, Path: "/a", Perm: 0o644, Errno: fserr.Errno(fserr.ErrExist)},
		// A short write: only the recorded prefix is applied.
		{Kind: oplog.KWrite, FD: 0, Off: 0, Data: []byte("0123456789"), RetN: 4,
			Errno: fserr.Errno(fserr.ErrNoSpace)},
	}
	res, err := s.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.OpsSkipped != 1 {
		t.Errorf("OpsSkipped = %d, want 1", res.OpsSkipped)
	}
	got, err := s.ReadAt(0, 0, 100)
	if err != nil || string(got) != "0123" {
		t.Errorf("after short-write replay: (%q, %v), want 0123", got, err)
	}
}

func TestShadowReplayValidatesStableFDs(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	// fd pointing at an unallocated inode must be rejected.
	_, err := s.Replay(ReplayInput{BaseFDs: map[fsapi.FD]uint32{3: 100}})
	if !errors.Is(err, fserr.ErrCorrupt) {
		t.Fatalf("Replay with bogus fd table: %v, want ErrCorrupt", err)
	}
}

func TestShadowReplayRejectsUnusableRecordedIno(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	recorded := []*oplog.Op{
		// Claims the root inode's number for a new file: unusable.
		{Kind: oplog.KCreate, Path: "/x", Perm: 0o644, RetFD: 0, RetIno: disklayout.RootIno},
	}
	res, err := s.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err == nil {
		t.Fatalf("replay accepted an already-allocated recorded inode; discrepancies: %v", res.Discrepancies)
	}
}

func TestShadowOverlayBecomesUpdate(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	fd, err := s.Create("/file", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt(fd, 0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	u, err := s.buildUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(u.Blocks) == 0 {
		t.Fatal("update has no blocks")
	}
	if len(u.FDs) != 1 || u.FDs[0].FD != fd {
		t.Errorf("update fds = %+v", u.FDs)
	}
	// At least one metadata block (inode table / bitmap) and one data block.
	meta, data := 0, 0
	for blk := range u.Blocks {
		if u.Meta[blk] {
			meta++
		} else {
			data++
		}
		_ = blk
	}
	if meta == 0 || data == 0 {
		t.Errorf("update block mix: %d meta, %d data", meta, data)
	}
}

func TestShadowChecksCountGrows(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	before := s.ChecksRun()
	fd, _ := s.Create("/c", 0o644)
	s.WriteAt(fd, 0, []byte("data"))
	s.Close(fd)
	if s.ChecksRun() <= before {
		t.Error("runtime checks did not increase across operations")
	}
}
