package shadowfs

import (
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
)

// Every operation below is the straight-line, single-threaded rendition of
// the shared API semantics. Path resolution always starts at the root inode
// and scans directory entries (no dentry cache, §3.3). Each helper validates
// what it reads before acting on it.

// dirScan finds name in a directory, returning (child ino, block index,
// slot). Every entry it passes is decoded and validated.
func (s *Shadow) dirScan(dirIno uint32, dir *disklayout.Inode, name string) (uint32, int64, int, error) {
	nblocks := dir.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := s.bmap(dir, bi)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := s.assert(p != 0, "directory %d has a hole at block %d", dirIno, bi); err != nil {
			return 0, 0, 0, err
		}
		b, err := s.readBlock(p)
		if err != nil {
			return 0, 0, 0, err
		}
		for slot := 0; slot < disklayout.DirentsPerBlock; slot++ {
			d, err := disklayout.DecodeDirent(b[slot*disklayout.DirentSize:])
			s.checks++
			if err != nil {
				return 0, 0, 0, err // the shadow does not skip bad entries
			}
			if d.Ino != 0 && d.Name == name {
				if err := s.assert(d.Ino < s.sb.NumInodes,
					"entry %q points at inode %d beyond table", name, d.Ino); err != nil {
					return 0, 0, 0, err
				}
				return d.Ino, bi, slot, nil
			}
		}
	}
	return 0, 0, 0, fserr.ErrNotExist
}

// walk resolves path components from the root.
func (s *Shadow) walk(comps []string) (uint32, *disklayout.Inode, error) {
	ino := s.sb.RootIno
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return 0, nil, err
	}
	for _, c := range comps {
		if !rec.IsDir() {
			return 0, nil, fserr.ErrNotDir
		}
		child, _, _, err := s.dirScan(ino, rec, c)
		if err != nil {
			return 0, nil, err
		}
		ino = child
		rec, err = s.readAllocInode(ino)
		if err != nil {
			return 0, nil, err
		}
	}
	return ino, rec, nil
}

func (s *Shadow) walkPath(path string) (uint32, *disklayout.Inode, error) {
	comps, err := fsapi.SplitPath(path)
	if err != nil {
		return 0, nil, err
	}
	return s.walk(comps)
}

func (s *Shadow) walkParent(path string) (uint32, *disklayout.Inode, string, error) {
	dir, base, err := fsapi.SplitDirBase(path)
	if err != nil {
		return 0, nil, "", err
	}
	if err := disklayout.ValidName(base); err != nil {
		return 0, nil, "", err
	}
	ino, rec, err := s.walk(dir)
	if err != nil {
		return 0, nil, "", err
	}
	if !rec.IsDir() {
		return 0, nil, "", fserr.ErrNotDir
	}
	return ino, rec, base, nil
}

// dirInsert writes (name -> ino) into the first free slot, extending the
// directory when full. The parent record is mutated (size) but not written
// back; the caller persists it.
func (s *Shadow) dirInsert(dirIno uint32, dir *disklayout.Inode, name string, ino uint32) error {
	nblocks := dir.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := s.bmap(dir, bi)
		if err != nil {
			return err
		}
		if err := s.assert(p != 0, "directory %d hole at block %d", dirIno, bi); err != nil {
			return err
		}
		b, err := s.readBlock(p)
		if err != nil {
			return err
		}
		for slot := 0; slot < disklayout.DirentsPerBlock; slot++ {
			d, err := disklayout.DecodeDirent(b[slot*disklayout.DirentSize:])
			if err != nil {
				return err
			}
			if d.Ino == 0 {
				disklayout.EncodeDirent(b[slot*disklayout.DirentSize:], disklayout.Dirent{Ino: ino, Name: name})
				return s.writeBlock(p, b, true)
			}
		}
	}
	p, err := s.bmapAlloc(dir, nblocks)
	if err != nil {
		return err
	}
	b, err := s.readBlock(p)
	if err != nil {
		return err
	}
	disklayout.EncodeDirent(b, disklayout.Dirent{Ino: ino, Name: name})
	if err := s.writeBlock(p, b, true); err != nil {
		return err
	}
	dir.Size += disklayout.BlockSize
	return nil
}

// dirSetSlot rewrites one known slot (remove with ino 0, or replace).
func (s *Shadow) dirSetSlot(dir *disklayout.Inode, bi int64, slot int, d disklayout.Dirent) error {
	p, err := s.bmap(dir, bi)
	if err != nil {
		return err
	}
	b, err := s.readBlock(p)
	if err != nil {
		return err
	}
	if d.Ino == 0 {
		for i := slot * disklayout.DirentSize; i < (slot+1)*disklayout.DirentSize; i++ {
			b[i] = 0
		}
	} else {
		disklayout.EncodeDirent(b[slot*disklayout.DirentSize:], d)
	}
	return s.writeBlock(p, b, true)
}

// dirIsEmpty scans for any live entry.
func (s *Shadow) dirIsEmpty(dirIno uint32, dir *disklayout.Inode) (bool, error) {
	nblocks := dir.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := s.bmap(dir, bi)
		if err != nil {
			return false, err
		}
		if err := s.assert(p != 0, "directory %d hole at block %d", dirIno, bi); err != nil {
			return false, err
		}
		b, err := s.readBlock(p)
		if err != nil {
			return false, err
		}
		for slot := 0; slot < disklayout.DirentsPerBlock; slot++ {
			d, err := disklayout.DecodeDirent(b[slot*disklayout.DirentSize:])
			if err != nil {
				return false, err
			}
			if d.Ino != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}

func (s *Shadow) allocFD() fsapi.FD {
	if s.haveWantFD {
		s.haveWantFD = false
		return s.wantFD
	}
	for fd := fsapi.FD(0); ; fd++ {
		if _, used := s.fds[fd]; !used {
			return fd
		}
	}
}

// dropIfUnreferenced frees an inode whose last link and descriptor are gone.
func (s *Shadow) dropIfUnreferenced(ino uint32, rec *disklayout.Inode) error {
	if rec.Nlink > 0 || s.opens[ino] > 0 {
		return nil
	}
	if err := s.truncateBlocks(rec, 0); err != nil {
		return err
	}
	return s.freeInode(ino, rec)
}

// Mkdir implements fsapi.FS.
func (s *Shadow) Mkdir(path string, perm uint16) error {
	pIno, parent, name, err := s.walkParent(path)
	if err != nil {
		return err
	}
	if _, _, _, err := s.dirScan(pIno, parent, name); err == nil {
		return fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return err
	}
	ino, rec, err := s.allocInode(disklayout.TypeDir, perm)
	if err != nil {
		return err
	}
	rec.Nlink = 2
	if err := s.dirInsert(pIno, parent, name, ino); err != nil {
		if ferr := s.freeInode(ino, rec); ferr != nil {
			return ferr
		}
		return err
	}
	now := s.clock.Tick()
	rec.Mtime, rec.Ctime = now, now
	parent.Nlink++
	parent.Mtime, parent.Ctime = now, now
	if err := s.writeInode(ino, rec); err != nil {
		return err
	}
	return s.writeInode(pIno, parent)
}

// Rmdir implements fsapi.FS.
func (s *Shadow) Rmdir(path string) error {
	pIno, parent, name, err := s.walkParent(path)
	if err != nil {
		return err
	}
	ino, bi, slot, err := s.dirScan(pIno, parent, name)
	if err != nil {
		return err
	}
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return err
	}
	if !rec.IsDir() {
		return fserr.ErrNotDir
	}
	empty, err := s.dirIsEmpty(ino, rec)
	if err != nil {
		return err
	}
	if !empty {
		return fserr.ErrNotEmpty
	}
	if err := s.dirSetSlot(parent, bi, slot, disklayout.Dirent{}); err != nil {
		return err
	}
	if err := s.truncateBlocks(rec, 0); err != nil {
		return err
	}
	rec.Nlink = 0
	if err := s.freeInode(ino, rec); err != nil {
		return err
	}
	now := s.clock.Tick()
	parent.Nlink--
	parent.Mtime, parent.Ctime = now, now
	return s.writeInode(pIno, parent)
}

// Create implements fsapi.FS.
func (s *Shadow) Create(path string, perm uint16) (fsapi.FD, error) {
	pIno, parent, name, err := s.walkParent(path)
	if err != nil {
		return -1, err
	}
	if _, _, _, err := s.dirScan(pIno, parent, name); err == nil {
		return -1, fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return -1, err
	}
	ino, rec, err := s.allocInode(disklayout.TypeFile, perm)
	if err != nil {
		return -1, err
	}
	rec.Nlink = 1
	if err := s.dirInsert(pIno, parent, name, ino); err != nil {
		if ferr := s.freeInode(ino, rec); ferr != nil {
			return -1, ferr
		}
		return -1, err
	}
	now := s.clock.Tick()
	rec.Mtime, rec.Ctime = now, now
	parent.Mtime, parent.Ctime = now, now
	if err := s.writeInode(ino, rec); err != nil {
		return -1, err
	}
	if err := s.writeInode(pIno, parent); err != nil {
		return -1, err
	}
	fd := s.allocFD()
	if _, used := s.fds[fd]; used {
		return -1, s.assert(false, "fd %d already open", fd)
	}
	s.fds[fd] = ino
	s.opens[ino]++
	return fd, nil
}

// Open implements fsapi.FS.
func (s *Shadow) Open(path string) (fsapi.FD, error) {
	ino, rec, err := s.walkPath(path)
	if err != nil {
		return -1, err
	}
	switch rec.Type() {
	case disklayout.TypeDir:
		return -1, fserr.ErrIsDir
	case disklayout.TypeSym:
		return -1, fserr.ErrInvalid
	}
	fd := s.allocFD()
	if _, used := s.fds[fd]; used {
		return -1, s.assert(false, "fd %d already open", fd)
	}
	s.fds[fd] = ino
	s.opens[ino]++
	return fd, nil
}

// Close implements fsapi.FS.
func (s *Shadow) Close(fd fsapi.FD) error {
	ino, ok := s.fds[fd]
	if !ok {
		return fserr.ErrBadFD
	}
	delete(s.fds, fd)
	if err := s.assert(s.opens[ino] > 0, "close of inode %d with zero opens", ino); err != nil {
		return err
	}
	s.opens[ino]--
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return err
	}
	return s.dropIfUnreferenced(ino, rec)
}

// ReadAt implements fsapi.FS.
func (s *Shadow) ReadAt(fd fsapi.FD, off int64, n int) ([]byte, error) {
	ino, ok := s.fds[fd]
	if !ok {
		return nil, fserr.ErrBadFD
	}
	if off < 0 || n < 0 {
		return nil, fserr.ErrInvalid
	}
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return nil, err
	}
	if off >= rec.Size {
		return []byte{}, nil
	}
	end := off + int64(n)
	if end > rec.Size {
		end = rec.Size
	}
	out := make([]byte, end-off)
	for pos := off; pos < end; {
		bi := pos / disklayout.BlockSize
		boff := pos % disklayout.BlockSize
		chunk := disklayout.BlockSize - boff
		if pos+chunk > end {
			chunk = end - pos
		}
		p, err := s.bmap(rec, bi)
		if err != nil {
			return nil, err
		}
		if p != 0 {
			b, err := s.readBlock(p)
			if err != nil {
				return nil, err
			}
			copy(out[pos-off:], b[boff:boff+chunk])
		}
		pos += chunk
	}
	return out, nil
}

// WriteAt implements fsapi.FS: block by block into the overlay.
func (s *Shadow) WriteAt(fd fsapi.FD, off int64, data []byte) (int, error) {
	ino, ok := s.fds[fd]
	if !ok {
		return 0, fserr.ErrBadFD
	}
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	if off+int64(len(data)) > disklayout.MaxFileSize {
		return 0, fserr.ErrTooBig
	}
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return 0, err
	}
	written := 0
	end := off + int64(len(data))
	var werr error
	for pos := off; pos < end; {
		bi := pos / disklayout.BlockSize
		boff := pos % disklayout.BlockSize
		chunk := disklayout.BlockSize - boff
		if pos+chunk > end {
			chunk = end - pos
		}
		p, err := s.bmapAlloc(rec, bi)
		if err != nil {
			werr = err
			break
		}
		b, err := s.readBlock(p)
		if err != nil {
			werr = err
			break
		}
		copy(b[boff:boff+chunk], data[written:written+int(chunk)])
		if err := s.writeBlock(p, b, false); err != nil {
			werr = err
			break
		}
		written += int(chunk)
		pos += chunk
	}
	if written > 0 {
		if off+int64(written) > rec.Size {
			rec.Size = off + int64(written)
		}
		now := s.clock.Tick()
		rec.Mtime, rec.Ctime = now, now
		if err := s.writeInode(ino, rec); err != nil {
			return written, err
		}
	}
	return written, werr
}

// Truncate implements fsapi.FS.
func (s *Shadow) Truncate(path string, size int64) error {
	ino, rec, err := s.walkPath(path)
	if err != nil {
		return err
	}
	if rec.IsDir() {
		return fserr.ErrIsDir
	}
	if !rec.IsFile() {
		return fserr.ErrInvalid
	}
	if size < 0 || size > disklayout.MaxFileSize {
		return fserr.ErrInvalid
	}
	old := rec.Size
	switch {
	case size < old:
		keep := (size + disklayout.BlockSize - 1) / disklayout.BlockSize
		if err := s.truncateBlocks(rec, keep); err != nil {
			return err
		}
		if tail := size % disklayout.BlockSize; tail != 0 {
			p, err := s.bmap(rec, size/disklayout.BlockSize)
			if err != nil {
				return err
			}
			if p != 0 {
				b, err := s.readBlock(p)
				if err != nil {
					return err
				}
				for i := tail; i < disklayout.BlockSize; i++ {
					b[i] = 0
				}
				if err := s.writeBlock(p, b, false); err != nil {
					return err
				}
			}
		}
		rec.Size = size
	case size > old:
		rec.Size = size
	}
	now := s.clock.Tick()
	rec.Mtime, rec.Ctime = now, now
	return s.writeInode(ino, rec)
}

// Unlink implements fsapi.FS.
func (s *Shadow) Unlink(path string) error {
	pIno, parent, name, err := s.walkParent(path)
	if err != nil {
		return err
	}
	ino, bi, slot, err := s.dirScan(pIno, parent, name)
	if err != nil {
		return err
	}
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return err
	}
	if rec.IsDir() {
		return fserr.ErrIsDir
	}
	if err := s.assert(rec.Nlink > 0, "unlink of inode %d with nlink 0", ino); err != nil {
		return err
	}
	if err := s.dirSetSlot(parent, bi, slot, disklayout.Dirent{}); err != nil {
		return err
	}
	now := s.clock.Tick()
	rec.Nlink--
	rec.Ctime = now
	parent.Mtime, parent.Ctime = now, now
	if err := s.writeInode(pIno, parent); err != nil {
		return err
	}
	if rec.Nlink == 0 && s.opens[ino] == 0 {
		if err := s.truncateBlocks(rec, 0); err != nil {
			return err
		}
		return s.freeInode(ino, rec)
	}
	return s.writeInode(ino, rec)
}

// Rename implements fsapi.FS.
func (s *Shadow) Rename(oldPath, newPath string) error {
	oldComps, err := fsapi.SplitPath(oldPath)
	if err != nil {
		return err
	}
	newComps, err := fsapi.SplitPath(newPath)
	if err != nil {
		return err
	}
	if len(oldComps) == 0 || len(newComps) == 0 {
		return fserr.ErrInvalid
	}
	if pathsEqual(oldComps, newComps) {
		_, _, err := s.walk(oldComps)
		return err
	}
	if len(newComps) > len(oldComps) && pathsEqual(oldComps, newComps[:len(oldComps)]) {
		return fserr.ErrInvalid
	}
	oldPIno, oldParent, err := s.walk(oldComps[:len(oldComps)-1])
	if err != nil {
		return err
	}
	if !oldParent.IsDir() {
		return fserr.ErrNotDir
	}
	oldName := oldComps[len(oldComps)-1]
	srcIno, oldBi, oldSlot, err := s.dirScan(oldPIno, oldParent, oldName)
	if err != nil {
		return err
	}
	src, err := s.readAllocInode(srcIno)
	if err != nil {
		return err
	}
	newPIno, newParent, err := s.walk(newComps[:len(newComps)-1])
	if err != nil {
		return err
	}
	if !newParent.IsDir() {
		return fserr.ErrNotDir
	}
	newName := newComps[len(newComps)-1]
	if err := disklayout.ValidName(newName); err != nil {
		return err
	}
	sameParent := oldPIno == newPIno
	if sameParent {
		newParent = oldParent // operate on one record, not two copies
	}
	dstIno, dstBi, dstSlot, derr := s.dirScan(newPIno, newParent, newName)
	switch {
	case derr == nil:
		if dstIno == srcIno {
			return nil
		}
		dst, err := s.readAllocInode(dstIno)
		if err != nil {
			return err
		}
		if src.IsDir() {
			if !dst.IsDir() {
				return fserr.ErrNotDir
			}
			empty, err := s.dirIsEmpty(dstIno, dst)
			if err != nil {
				return err
			}
			if !empty {
				return fserr.ErrNotEmpty
			}
		} else if dst.IsDir() {
			return fserr.ErrIsDir
		}
		if err := s.dirSetSlot(newParent, dstBi, dstSlot, disklayout.Dirent{Ino: srcIno, Name: newName}); err != nil {
			return err
		}
		if dst.IsDir() {
			newParent.Nlink--
			dst.Nlink = 0
		} else {
			if err := s.assert(dst.Nlink > 0, "rename target inode %d nlink 0", dstIno); err != nil {
				return err
			}
			dst.Nlink--
		}
		if dst.Nlink == 0 && s.opens[dstIno] == 0 {
			if err := s.truncateBlocks(dst, 0); err != nil {
				return err
			}
			if err := s.freeInode(dstIno, dst); err != nil {
				return err
			}
		} else if err := s.writeInode(dstIno, dst); err != nil {
			return err
		}
	case derr == fserr.ErrNotExist:
		if err := s.dirInsert(newPIno, newParent, newName, srcIno); err != nil {
			return err
		}
	default:
		return derr
	}
	// Remove the old name. Re-scan: the insert may have shifted nothing, but
	// scanning again keeps the logic simple and fully checked.
	srcIno2, bi, slot, err := s.dirScan(oldPIno, oldParent, oldName)
	if err != nil {
		return err
	}
	if err := s.assert(srcIno2 == srcIno, "source moved during rename"); err != nil {
		return err
	}
	_ = oldBi
	_ = oldSlot
	if err := s.dirSetSlot(oldParent, bi, slot, disklayout.Dirent{}); err != nil {
		return err
	}
	if src.IsDir() && !sameParent {
		oldParent.Nlink--
		newParent.Nlink++
	}
	now := s.clock.Tick()
	src.Ctime = now
	oldParent.Mtime, oldParent.Ctime = now, now
	newParent.Mtime, newParent.Ctime = now, now
	if err := s.writeInode(srcIno, src); err != nil {
		return err
	}
	if err := s.writeInode(oldPIno, oldParent); err != nil {
		return err
	}
	if !sameParent {
		return s.writeInode(newPIno, newParent)
	}
	return nil
}

func pathsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Link implements fsapi.FS.
func (s *Shadow) Link(oldPath, newPath string) error {
	srcIno, src, err := s.walkPath(oldPath)
	if err != nil {
		return err
	}
	if src.IsDir() {
		return fserr.ErrIsDir
	}
	pIno, parent, name, err := s.walkParent(newPath)
	if err != nil {
		return err
	}
	if _, _, _, err := s.dirScan(pIno, parent, name); err == nil {
		return fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return err
	}
	if err := s.dirInsert(pIno, parent, name, srcIno); err != nil {
		return err
	}
	now := s.clock.Tick()
	src.Nlink++
	src.Ctime = now
	parent.Mtime, parent.Ctime = now, now
	if err := s.writeInode(srcIno, src); err != nil {
		return err
	}
	return s.writeInode(pIno, parent)
}

// Symlink implements fsapi.FS.
func (s *Shadow) Symlink(target, linkPath string) error {
	if len(target) > disklayout.BlockSize {
		return fserr.ErrNameTooLong
	}
	if target == "" {
		return fserr.ErrInvalid
	}
	pIno, parent, name, err := s.walkParent(linkPath)
	if err != nil {
		return err
	}
	if _, _, _, err := s.dirScan(pIno, parent, name); err == nil {
		return fserr.ErrExist
	} else if err != fserr.ErrNotExist {
		return err
	}
	ino, rec, err := s.allocInode(disklayout.TypeSym, 0o777)
	if err != nil {
		return err
	}
	rec.Nlink = 1
	blk, err := s.allocBlock(false)
	if err != nil {
		if ferr := s.freeInode(ino, rec); ferr != nil {
			return ferr
		}
		return err
	}
	b := make([]byte, disklayout.BlockSize)
	copy(b, target)
	if err := s.writeBlock(blk, b, false); err != nil {
		return err
	}
	rec.Direct[0] = blk
	rec.Size = int64(len(target))
	if err := s.dirInsert(pIno, parent, name, ino); err != nil {
		if ferr := s.freeBlock(blk); ferr != nil {
			return ferr
		}
		if ferr := s.freeInode(ino, rec); ferr != nil {
			return ferr
		}
		return err
	}
	now := s.clock.Tick()
	rec.Mtime, rec.Ctime = now, now
	parent.Mtime, parent.Ctime = now, now
	if err := s.writeInode(ino, rec); err != nil {
		return err
	}
	return s.writeInode(pIno, parent)
}

// Readlink implements fsapi.FS.
func (s *Shadow) Readlink(path string) (string, error) {
	_, rec, err := s.walkPath(path)
	if err != nil {
		return "", err
	}
	if rec.Type() != disklayout.TypeSym {
		return "", fserr.ErrInvalid
	}
	if err := s.assert(rec.Direct[0] != 0, "symlink with no target block"); err != nil {
		return "", err
	}
	if err := s.assert(rec.Size >= 0 && rec.Size <= disklayout.BlockSize,
		"symlink target size %d", rec.Size); err != nil {
		return "", err
	}
	b, err := s.readBlock(rec.Direct[0])
	if err != nil {
		return "", err
	}
	return string(b[:rec.Size]), nil
}

func statOf(ino uint32, rec *disklayout.Inode) fsapi.Stat {
	return fsapi.Stat{
		Ino:   ino,
		Mode:  rec.Mode,
		Nlink: rec.Nlink,
		Size:  rec.Size,
		Mtime: rec.Mtime,
		Ctime: rec.Ctime,
	}
}

// Stat implements fsapi.FS.
func (s *Shadow) Stat(path string) (fsapi.Stat, error) {
	ino, rec, err := s.walkPath(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return statOf(ino, rec), nil
}

// Fstat implements fsapi.FS.
func (s *Shadow) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	ino, ok := s.fds[fd]
	if !ok {
		return fsapi.Stat{}, fserr.ErrBadFD
	}
	rec, err := s.readAllocInode(ino)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return statOf(ino, rec), nil
}

// Readdir implements fsapi.FS.
func (s *Shadow) Readdir(path string) ([]fsapi.DirEntry, error) {
	dirIno, rec, err := s.walkPath(path)
	if err != nil {
		return nil, err
	}
	if !rec.IsDir() {
		return nil, fserr.ErrNotDir
	}
	var out []fsapi.DirEntry
	nblocks := rec.Size / disklayout.BlockSize
	for bi := int64(0); bi < nblocks; bi++ {
		p, err := s.bmap(rec, bi)
		if err != nil {
			return nil, err
		}
		if err := s.assert(p != 0, "directory %d hole at block %d", dirIno, bi); err != nil {
			return nil, err
		}
		b, err := s.readBlock(p)
		if err != nil {
			return nil, err
		}
		for slot := 0; slot < disklayout.DirentsPerBlock; slot++ {
			d, err := disklayout.DecodeDirent(b[slot*disklayout.DirentSize:])
			if err != nil {
				return nil, err
			}
			if d.Ino == 0 {
				continue
			}
			child, err := s.readAllocInode(d.Ino)
			if err != nil {
				return nil, err
			}
			out = append(out, fsapi.DirEntry{Name: d.Name, Ino: d.Ino, Type: child.Type()})
		}
	}
	return out, nil
}

// SetPerm implements fsapi.FS.
func (s *Shadow) SetPerm(path string, perm uint16) error {
	ino, rec, err := s.walkPath(path)
	if err != nil {
		return err
	}
	rec.Mode = disklayout.MkMode(rec.Type(), perm)
	rec.Ctime = s.clock.Tick()
	return s.writeInode(ino, rec)
}

// Fsync implements fsapi.FS. The shadow never persists anything itself:
// "completed sync operations are already on disk ... and incomplete sync
// operations are delegated back to the base filesystem" (§2.3). It still
// validates the descriptor.
func (s *Shadow) Fsync(fd fsapi.FD) error {
	if _, ok := s.fds[fd]; !ok {
		return fserr.ErrBadFD
	}
	return nil
}

// Sync implements fsapi.FS as a no-op for the same reason as Fsync.
func (s *Shadow) Sync() error { return nil }
