package shadowfs

// Extent-file support. The shadow shares the base's on-disk format, so it
// must read files the base laid out as extent runs — but it keeps its own
// write path as simple as possible: the first mutation that would change an
// extent file's mapping (a write into an unmapped block, a shrinking
// truncate) demotes the file to the legacy pointer tree, and everything
// after that takes the battle-tested legacy paths. Reads and overwrites of
// mapped blocks never demote, so a recovery that only replays reads and
// in-place writes hands back the extent layout untouched.
//
// ENOSPC parity is the subtle part. The specification model charges every
// file bmap-geometry cost (data blocks plus the pointer-tree spine); extent
// files physically cost less, and the difference — the slack — is space the
// bitmap shows free but the model considers spent. The shadow tracks the
// image's total slack and refuses model-charged allocations once the free
// count falls to it, which reproduces the model's ENOSPC timing exactly and
// reserves precisely enough physical blocks for any demotion to succeed
// (a demotion consumes its file's slack, never more).

import (
	"fmt"

	"repro/internal/disklayout"
)

// extentList walks an extent inode's full run list and node chain through
// the overlay, validating bounds and file-space ordering.
func (s *Shadow) extentList(rec *disklayout.Inode) ([]disklayout.Extent, []uint32, error) {
	var exts []disklayout.Extent
	var nodes []uint32
	var prevEnd uint64
	err := rec.ExtentWalk(s.sb, s.readBlock,
		func(nblk uint32) error {
			nodes = append(nodes, nblk)
			return nil
		},
		func(e disklayout.Extent) error {
			s.checks++
			if err := s.sb.ValidateExtent(e); err != nil {
				return fmt.Errorf("shadowfs: %w", err)
			}
			if err := s.assert(uint64(e.FileOff) >= prevEnd,
				"extent at file block %d overlaps run ending at %d", e.FileOff, prevEnd); err != nil {
				return err
			}
			prevEnd = uint64(e.End())
			exts = append(exts, e)
			return nil
		})
	if err != nil {
		return nil, nil, err
	}
	return exts, nodes, nil
}

// extentLookup resolves file block idx against an extent inode (0 = hole).
func (s *Shadow) extentLookup(rec *disklayout.Inode, idx int64) (uint32, error) {
	exts, _, err := s.extentList(rec)
	if err != nil {
		return 0, err
	}
	for _, e := range exts {
		if int64(e.FileOff) <= idx && idx < int64(e.End()) {
			return e.Start + uint32(idx-int64(e.FileOff)), nil
		}
	}
	return 0, nil
}

// extentSlack returns modelCost - physicalCost for one extent file: the
// number of bitmap-free blocks the model nonetheless considers spent on it.
func extentSlack(exts []disklayout.Extent, nodes int) int64 {
	var nBlocks, indCount int64
	dblGroups := make(map[int64]bool)
	for _, e := range exts {
		for k := int64(e.FileOff); k < int64(e.End()); k++ {
			nBlocks++
			switch {
			case k < disklayout.NumDirect:
			case k < disklayout.NumDirect+disklayout.PtrsPerBlock:
				indCount++
			default:
				dblGroups[(k-disklayout.NumDirect-disklayout.PtrsPerBlock)/disklayout.PtrsPerBlock] = true
			}
		}
	}
	var spine int64
	if indCount > 0 {
		spine++
	}
	if len(dblGroups) > 0 {
		spine += 1 + int64(len(dblGroups))
	}
	return spine - int64(nodes)
}

// demoteExtents converts an extent file to the legacy pointer tree in the
// overlay: node blocks are freed first, then every run block is re-homed in
// a freshly built spine. Spine blocks come from the raw allocator — their
// cost is the file's slack, which the charged allocator has been reserving,
// so demotion cannot hit ENOSPC on a consistent image.
func (s *Shadow) demoteExtents(rec *disklayout.Inode) error {
	exts, nodes, err := s.extentList(rec)
	if err != nil {
		return err
	}
	slackF := extentSlack(exts, len(nodes))
	for _, nb := range nodes {
		if err := s.freeBlock(nb); err != nil {
			return err
		}
	}
	rec.Flags &^= disklayout.FlagExtents
	rec.Direct = [disklayout.NumDirect]uint32{}
	rec.Indirect = 0
	rec.DblIndir = 0
	for _, e := range exts {
		for k := uint32(0); k < e.Len; k++ {
			if err := s.placeExtentPtr(rec, int64(e.FileOff)+int64(k), e.Start+k); err != nil {
				return err
			}
		}
	}
	s.slack -= slackF
	return nil
}

// placeExtentPtr installs an already-allocated block at file index idx in
// the legacy tree, building spine blocks from the raw allocator as needed.
func (s *Shadow) placeExtentPtr(rec *disklayout.Inode, idx int64, p uint32) error {
	switch {
	case idx < disklayout.NumDirect:
		rec.Direct[idx] = p
		return nil
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if rec.Indirect == 0 {
			ib, err := s.allocBlockRaw(true)
			if err != nil {
				return err
			}
			rec.Indirect = ib
		}
		return s.writePtr(rec.Indirect, idx-disklayout.NumDirect, p)
	default:
		rel := idx - disklayout.NumDirect - disklayout.PtrsPerBlock
		if rec.DblIndir == 0 {
			db, err := s.allocBlockRaw(true)
			if err != nil {
				return err
			}
			rec.DblIndir = db
		}
		l2, err := s.readPtr(rec.DblIndir, rel/disklayout.PtrsPerBlock)
		if err != nil {
			return err
		}
		if l2 == 0 {
			l2, err = s.allocBlockRaw(true)
			if err != nil {
				return err
			}
			if err := s.writePtr(rec.DblIndir, rel/disklayout.PtrsPerBlock, l2); err != nil {
				return err
			}
		}
		return s.writePtr(l2, rel%disklayout.PtrsPerBlock, p)
	}
}

// freeExtents releases everything an extent file maps — run blocks and node
// chain — and leaves the record an empty legacy map (the shadow does not
// grow extent lists, so a truncated-to-zero file continues in legacy form).
func (s *Shadow) freeExtents(rec *disklayout.Inode) error {
	exts, nodes, err := s.extentList(rec)
	if err != nil {
		return err
	}
	slackF := extentSlack(exts, len(nodes))
	for _, nb := range nodes {
		if err := s.freeBlock(nb); err != nil {
			return err
		}
	}
	for _, e := range exts {
		for k := uint32(0); k < e.Len; k++ {
			if err := s.freeBlock(e.Start + k); err != nil {
				return err
			}
		}
	}
	rec.Flags &^= disklayout.FlagExtents
	rec.Direct = [disklayout.NumDirect]uint32{}
	rec.Indirect = 0
	rec.DblIndir = 0
	s.slack -= slackF
	return nil
}

// seedSpace computes the free-block count and total extent slack for the
// attached image; allocBlock's ENOSPC guard compares the two. Records that
// fail to decode or walk are skipped — their operations will surface the
// corruption with a precise error when touched.
func (s *Shadow) seedSpace() error {
	s.physFree, s.slack = 0, 0
	for blk := s.sb.DataStart; blk < s.sb.NumBlocks; blk++ {
		used, err := s.blockBit(blk)
		if err != nil {
			return err
		}
		if !used {
			s.physFree++
		}
	}
	for blk := s.sb.InodeTableStart; blk < s.sb.InodeTableStart+s.sb.InodeTableLen; blk++ {
		b, err := s.readBlock(blk)
		if err != nil {
			return err
		}
		base := (blk - s.sb.InodeTableStart) * disklayout.InodesPerBlock
		for i := 0; i < disklayout.InodesPerBlock; i++ {
			ino := base + uint32(i)
			if ino >= s.sb.NumInodes {
				break
			}
			rec, err := disklayout.DecodeInode(b[i*disklayout.InodeSize : (i+1)*disklayout.InodeSize])
			if err != nil || rec.IsFree() || !rec.IsExtents() {
				continue
			}
			exts, nodes, err := s.extentList(rec)
			if err != nil {
				continue
			}
			s.slack += extentSlack(exts, len(nodes))
		}
	}
	if err := s.assert(s.physFree >= s.slack,
		"free blocks %d below extent slack %d", s.physFree, s.slack); err != nil {
		return err
	}
	return nil
}
