package shadowfs

import (
	"fmt"
	"sort"

	"repro/internal/difftest"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/handoff"
	"repro/internal/oplog"
)

// ReplayerKey identifies the trusted on-disk state a replayer's in-memory
// overlay extends. A retained (warm) replayer is valid for a later fault
// only if the key still matches: StableSeq is the op-log truncation
// watermark (a moved stable point means the disk absorbed ops the overlay
// also holds), and DevGen is the device write generation (any base write —
// journal replay at mount, commit, checkpoint, eviction — changes the bytes
// under the overlay).
type ReplayerKey struct {
	StableSeq uint64
	DevGen    uint64
}

// Replayer is the incremental recovery engine inside the shadow: it consumes
// the recorded op-log gap in batches, emits the resulting block images as
// sealed handoff chunks as it goes, and can be retained after a successful
// recovery so a second fault shortly after the first replays only the new
// op suffix instead of the whole gap.
//
// Lifecycle: NewReplayer → Seed (once) → any number of Feed/EmitChunk
// interleavings → Finish. After Finish the replayer may be retained; a
// warm resume repeats Feed/EmitChunk/Finish for the new suffix — Seed is
// not called again, and MarkConsumed tells the replayer which seqs the
// resume path consumed outside Feed (the appended in-flight op).
type Replayer struct {
	s    *Shadow
	key  ReplayerKey
	stop bool // abort on constrained-mode discrepancy

	seeded  bool
	nextSeq uint64 // first op seq not yet consumed
	haveSeq bool

	chunkIdx int
	sums     []uint32
	emitted  map[uint32]bool // blocks handed off in some prior chunk

	discrepancies []difftest.Discrepancy
	opsReplayed   int
	opsSkipped    int
}

// NewReplayer attaches a replay engine to a freshly constructed shadow.
// stopOnDiscrepancy aborts recovery when constrained-mode cross-checking
// disagrees with a recorded outcome.
func NewReplayer(s *Shadow, key ReplayerKey, stopOnDiscrepancy bool) *Replayer {
	return &Replayer{s: s, key: key, stop: stopOnDiscrepancy, emitted: make(map[uint32]bool)}
}

// Key returns the (stable seq, device generation) pair the replayer's state
// is valid against.
func (r *Replayer) Key() ReplayerKey { return r.key }

// Rekey binds the retained state to a new key — the supervisor calls it at
// the end of a successful recovery, after the resume path's own device
// writes, so the key names exactly the (stable point, device generation)
// the overlay extends.
func (r *Replayer) Rekey(k ReplayerKey) { r.key = k }

// NextSeq returns the first op-log sequence number the replayer has not yet
// consumed. A warm resume fetches exactly the suffix from here
// (oplog.SnapshotSince) instead of re-copying the whole gap.
func (r *Replayer) NextSeq() uint64 { return r.nextSeq }

// Shadow returns the underlying shadow filesystem.
func (r *Replayer) Shadow() *Shadow { return r.s }

// Discrepancies returns constrained-mode cross-check disagreements
// accumulated so far.
func (r *Replayer) Discrepancies() []difftest.Discrepancy { return r.discrepancies }

// OpsReplayed and OpsSkipped count operations executed and omitted across
// the replayer's whole lifetime, including warm resumes.
func (r *Replayer) OpsReplayed() int { return r.opsReplayed }

// OpsSkipped counts recorded operations omitted (error outcomes, syncs).
func (r *Replayer) OpsSkipped() int { return r.opsSkipped }

// MarkConsumed advances the consumed-seq watermark without replaying: the
// resume path appends the in-flight op (already executed autonomously by
// Finish) to the op log, and the warm state must cover its seq.
func (r *Replayer) MarkConsumed(nextSeq uint64) {
	if !r.haveSeq || nextSeq > r.nextSeq {
		r.nextSeq = nextSeq
		r.haveSeq = true
	}
}

// Seed installs the stable-point descriptor table and clock. Must be called
// exactly once, before the first Feed. Every inode must exist on disk, be
// allocated, and be a regular file (directories are never held open through
// this API, and symlinks are not openable).
func (r *Replayer) Seed(baseFDs map[fsapi.FD]uint32, startClock uint64) error {
	if r.seeded {
		return r.s.assert(false, "replayer seeded twice")
	}
	r.seeded = true
	s := r.s
	s.clock.Set(startClock)
	for fd, ino := range baseFDs {
		rec, err := s.readAllocInode(ino)
		if err != nil {
			return fmt.Errorf("shadowfs: replay fd %d: %w", fd, err)
		}
		if err := s.assert(rec.IsFile(), "fd %d maps to non-file inode %d (type %d)",
			fd, ino, rec.Type()); err != nil {
			return err
		}
		if _, dup := s.fds[fd]; dup {
			return s.assert(false, "duplicate fd %d in stable-point table", fd)
		}
		s.fds[fd] = ino
		s.opens[ino]++
	}
	return nil
}

// Feed replays a batch of recorded operations in constrained mode, in the
// order given. The caller is responsible for feeding each op exactly once;
// a warm resume fetches the not-yet-consumed suffix with
// oplog.SnapshotSince(NextSeq()) rather than refeeding the whole gap.
func (r *Replayer) Feed(ops []*oplog.Op) error {
	if !r.seeded {
		return r.s.assert(false, "replayer fed before seeding")
	}
	for _, rec := range ops {
		if err := r.feedOne(rec); err != nil {
			return err
		}
		if !r.haveSeq || rec.Seq+1 > r.nextSeq {
			r.nextSeq = rec.Seq + 1
			r.haveSeq = true
		}
	}
	return nil
}

// feedOne replays one recorded operation in constrained mode: completed
// syncs are already on disk (skipped), error outcomes are omitted except
// short writes whose successfully written prefix is application-visible,
// and allocation/descriptor decisions are pinned to the recorded outcome so
// application-visible numbers are reproduced — validating usability instead
// of trusting blindly.
func (r *Replayer) feedOne(rec *oplog.Op) error {
	s := r.s
	if rec.Kind == oplog.KFsync || rec.Kind == oplog.KSync {
		r.opsSkipped++
		return nil
	}
	if rec.Errno != 0 {
		if rec.Kind == oplog.KWrite && rec.RetN > 0 {
			partial := rec.Clone()
			partial.Data = partial.Data[:rec.RetN]
			got := partial.Clone()
			got.Errno, got.RetN = 0, 0
			_ = oplog.Apply(s, got)
			if got.RetN != rec.RetN || got.Errno != 0 {
				r.discrepancies = append(r.discrepancies, difftest.Discrepancy{
					Op: rec, Field: "partial-write",
					Got:  fmt.Sprintf("n=%d errno=%d", got.RetN, got.Errno),
					Want: fmt.Sprintf("n=%d errno=0", rec.RetN),
				})
				if r.stop {
					return fmt.Errorf("shadowfs: constrained replay diverged at %s: %w", rec, fserr.ErrCorrupt)
				}
			}
			r.opsReplayed++
			return nil
		}
		r.opsSkipped++
		return nil
	}
	switch rec.Kind {
	case oplog.KCreate, oplog.KMkdir, oplog.KSymlink:
		s.wantIno = rec.RetIno
	}
	switch rec.Kind {
	case oplog.KCreate, oplog.KOpen:
		s.wantFD = rec.RetFD
		s.haveWantFD = true
	}
	got := rec.Clone()
	got.Errno, got.RetFD, got.RetIno, got.RetN = 0, 0, 0, 0
	_ = oplog.Apply(s, got)
	s.wantIno = 0
	s.haveWantFD = false
	r.opsReplayed++
	if d := difftest.CompareOutcome(got, rec); len(d) > 0 {
		r.discrepancies = append(r.discrepancies, d...)
		if r.stop {
			return fmt.Errorf("shadowfs: constrained replay diverged at %s: %w", rec, fserr.ErrCorrupt)
		}
	}
	return nil
}

// EmitChunk seals every block written or freed since the last emission into
// one handoff chunk, deep-copying the block images — this is the single
// defensive copy across the isolation boundary; the base adopts the slices.
// Returns nil if nothing changed since the last chunk.
func (r *Replayer) EmitChunk() *handoff.Chunk {
	dirty, freed := r.s.TakeDelta()
	c := handoff.NewChunk(r.chunkIdx)
	for _, blk := range dirty {
		data, ok := r.s.overlay[blk]
		if !ok {
			continue // freed after dirtying within the same delta window
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		c.Blocks[blk] = cp
		if r.s.meta[blk] {
			c.Meta[blk] = true
		}
	}
	for _, blk := range freed {
		if r.emitted[blk] {
			c.Freed = append(c.Freed, blk)
		}
	}
	sort.Slice(c.Freed, func(i, j int) bool { return c.Freed[i] < c.Freed[j] })
	if c.Empty() {
		return nil
	}
	for blk := range c.Blocks {
		r.emitted[blk] = true
	}
	for _, blk := range c.Freed {
		delete(r.emitted, blk)
	}
	c.Seal()
	r.chunkIdx++
	r.sums = append(r.sums, c.Sum)
	return c
}

// Finish completes one recovery: it executes the in-flight operation in
// autonomous mode (the shadow makes its own policy decisions — fresh inode
// numbers, lowest-free descriptor), runs the shadow's final self-checks,
// emits the last chunk, and seals the manifest binding the whole stream.
// The returned in-flight op carries the shadow's outcome; syncs are not
// handled here (the base re-runs them after hand-off). The replayer remains
// usable for a warm resume afterwards.
func (r *Replayer) Finish(inFlight *oplog.Op) (*handoff.Chunk, *handoff.Manifest, *oplog.Op, error) {
	fl := r.runInFlight(inFlight)
	if err := r.s.sanityCheckFinal(); err != nil {
		return nil, nil, nil, err
	}
	last := r.EmitChunk()
	m := &handoff.Manifest{
		NumChunks: r.chunkIdx,
		Chain:     handoff.ChainSums(r.sums),
		FDs:       sortedFDs(r.s.fds),
		Clock:     r.s.clock.Now(),
	}
	m.Seal()
	return last, m, fl, nil
}

// runInFlight executes the faulted in-flight operation in autonomous mode:
// the shadow makes its own policy decisions (fresh inode numbers,
// lowest-free descriptor). Syncs pass through unexecuted — the base re-runs
// them after hand-off. Returns nil if there was no in-flight op.
func (r *Replayer) runInFlight(inFlight *oplog.Op) *oplog.Op {
	if inFlight == nil {
		return nil
	}
	fl := inFlight.Clone()
	fl.Errno, fl.RetFD, fl.RetIno, fl.RetN = 0, 0, 0, 0
	if fl.Kind != oplog.KFsync && fl.Kind != oplog.KSync {
		_ = oplog.Apply(r.s, fl)
	}
	r.opsReplayed++
	return fl
}

// ResetStream rearms the chunk stream for the next recovery after a warm
// retention: the base that crashed absorbed the previous chunks into a
// now-dead instance, so the next recovery must hand off the full overlay
// again, from chunk zero.
func (r *Replayer) ResetStream() {
	r.chunkIdx = 0
	r.sums = nil
	r.emitted = make(map[uint32]bool)
	r.s.deltaFreed = make(map[uint32]bool)
	r.s.deltaDirty = make(map[uint32]bool)
	for blk := range r.s.overlay {
		r.s.deltaDirty[blk] = true
	}
}

func sortedFDs(fds map[fsapi.FD]uint32) []handoff.FDEntry {
	out := make([]handoff.FDEntry, 0, len(fds))
	for fd, ino := range fds {
		out = append(out, handoff.FDEntry{FD: fd, Ino: ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FD < out[j].FD })
	return out
}
