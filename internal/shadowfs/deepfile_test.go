package shadowfs

import (
	"testing"

	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/model"
)

// TestShadowDeepFileThroughDoubleIndirect drives the shadow's block-mapping
// and truncation logic through the full pointer geometry — direct, single-
// indirect, and double-indirect — in lockstep with the specification model.
func TestShadowDeepFileThroughDoubleIndirect(t *testing.T) {
	s, _, sb := freshShadow(t, 16384)
	m := model.New(sb)

	sfd, err := s.Create("/deep", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mfd, err := m.Create("/deep", 0o644)
	if err != nil || mfd != sfd {
		t.Fatal(err)
	}
	idxs := []int64{
		0, 5,
		disklayout.NumDirect - 1,
		disklayout.NumDirect,
		disklayout.NumDirect + 100,
		disklayout.NumDirect + disklayout.PtrsPerBlock - 1,
		disklayout.NumDirect + disklayout.PtrsPerBlock,
		disklayout.NumDirect + disklayout.PtrsPerBlock + 1,
		disklayout.NumDirect + disklayout.PtrsPerBlock + disklayout.PtrsPerBlock,
		disklayout.NumDirect + disklayout.PtrsPerBlock + disklayout.PtrsPerBlock + 500,
	}
	for _, idx := range idxs {
		payload := []byte{byte(idx), byte(idx >> 8), 0xCC}
		sn, serr := s.WriteAt(sfd, idx*disklayout.BlockSize, payload)
		mn, merr := m.WriteAt(mfd, idx*disklayout.BlockSize, payload)
		if sn != mn || (serr == nil) != (merr == nil) {
			t.Fatalf("write idx %d: shadow (%d,%v) model (%d,%v)", idx, sn, serr, mn, merr)
		}
	}
	// Hole reads at unmaterialized indices agree too.
	for _, idx := range []int64{1, disklayout.NumDirect + 1, disklayout.NumDirect + disklayout.PtrsPerBlock + 7} {
		sg, _ := s.ReadAt(sfd, idx*disklayout.BlockSize, 3)
		mg, _ := m.ReadAt(mfd, idx*disklayout.BlockSize, 3)
		if string(sg) != string(mg) {
			t.Fatalf("hole read idx %d: %q vs %q", idx, sg, mg)
		}
	}
	if s.UsedOverlayBlocks() == 0 {
		t.Error("no overlay blocks after deep writes")
	}
	// Staged truncation down through each range.
	for _, size := range []int64{
		(disklayout.NumDirect + disklayout.PtrsPerBlock + 2) * disklayout.BlockSize,
		(disklayout.NumDirect + 3) * disklayout.BlockSize,
		5,
		0,
	} {
		if err := s.Truncate("/deep", size); err != nil {
			t.Fatalf("shadow truncate %d: %v", size, err)
		}
		if err := m.Truncate("/deep", size); err != nil {
			t.Fatalf("model truncate %d: %v", size, err)
		}
		ss, _ := s.Fstat(sfd)
		ms, _ := m.Fstat(mfd)
		if ss.Size != ms.Size {
			t.Fatalf("size after truncate: %d vs %d", ss.Size, ms.Size)
		}
	}
	if err := s.Close(sfd); err != nil {
		t.Fatal(err)
	}
	m.Close(mfd)
	gotState, err := difftest.DumpState(s)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := difftest.DumpState(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range difftest.CompareStates(gotState, wantState) {
		t.Errorf("state: %s", d)
	}
}

// UsedOverlayBlocks is exercised above via the exported Overlay accessor.
func (s *Shadow) UsedOverlayBlocks() int { return len(s.overlay) }
