// Package shadowfs is the shadow filesystem: the simplest possible yet
// equivalent implementation of the base filesystem's API and on-disk format,
// built for robustness instead of performance (§2.3, §3.3).
//
// Everything the base has for speed, the shadow deliberately lacks:
//
//   - no dentry cache — every lookup walks from the root inode and scans
//     directory entries;
//   - no inode or block caches — one flat overlay map holds the blocks
//     written during recovery, and every read goes to the device (through
//     the overlay) synchronously;
//   - no concurrency — strictly single-threaded, no locks;
//   - no journal and no writes to the device — the shadow's device handle is
//     read-only (enforced by blockdev.ReadOnly), and all modifications land
//     in the overlay, which becomes the handoff.Update the base absorbs.
//
// In exchange, the shadow checks everything: the image is validated by fsck
// before use, every inode read is checksum- and pointer-validated and
// cross-checked against the allocation bitmap, every allocation and free
// verifies the bitmap transition, and every operation guards its own
// invariants. The paper pairs these runtime checks with formal verification;
// here the machine-checked counterpart is the executable specification
// (internal/model) that the shadow is differentially verified against, plus
// property-based tests (see package model and the difftest campaign).
package shadowfs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fsck"
	"repro/internal/fserr"
)

// Options configures shadow startup.
type Options struct {
	// SkipFsck starts without the full image check. Recovery always runs
	// fsck; this exists for benchmarks that measure the phases separately.
	SkipFsck bool
}

// Shadow is the shadow filesystem. It implements fsapi.FS. Not safe for
// concurrent use by design: the shadow is strictly sequential.
type Shadow struct {
	dev     blockdev.Device // read-only: writes through it are shadow bugs
	sb      *disklayout.Superblock
	overlay map[uint32][]byte
	meta    map[uint32]bool
	fds     map[fsapi.FD]uint32
	opens   map[uint32]int
	clock   fsapi.Clock
	checks  int64

	// Delta tracking for the streaming replayer: blocks written or freed
	// since the last TakeDelta. A block that is freed and then rewritten is
	// dirty again, not freed; a dirtied block that is freed leaves only the
	// freed marker.
	deltaDirty map[uint32]bool
	deltaFreed map[uint32]bool

	// physFree counts free data-region blocks; slack is the image's total
	// extent slack (see extent.go). The charged allocator refuses once
	// physFree falls to slack, matching the specification model's ENOSPC
	// timing and reserving the blocks demotion needs.
	physFree int64
	slack    int64

	// Constrained-mode constraints for the next allocating/opening
	// operation; zero values mean autonomous decisions.
	wantIno    uint32
	wantFD     fsapi.FD
	haveWantFD bool
}

var _ fsapi.FS = (*Shadow)(nil)

// New attaches a shadow to the device's current on-disk state. The device
// is wrapped read-only; unless SkipFsck is set the whole image is checked
// first and rejected if corrupt — the shadow never executes over an image it
// has not validated ("the input image must be guaranteed to be valid",
// §4.3).
func New(dev blockdev.Device, opts Options) (*Shadow, error) {
	if !opts.SkipFsck {
		rep := fsck.Check(dev)
		if err := rep.Err(); err != nil {
			return nil, err
		}
	}
	ro := blockdev.NewReadOnly(dev)
	b, err := ro.ReadBlock(0)
	if err != nil {
		return nil, fmt.Errorf("shadowfs: superblock: %w", err)
	}
	sb, err := disklayout.DecodeSuperblock(b)
	if err != nil {
		return nil, err
	}
	if sb.NumBlocks > dev.NumBlocks() {
		return nil, fmt.Errorf("shadowfs: superblock claims %d blocks, device has %d: %w",
			sb.NumBlocks, dev.NumBlocks(), fserr.ErrCorrupt)
	}
	s := &Shadow{
		dev:        ro,
		sb:         sb,
		overlay:    make(map[uint32][]byte),
		meta:       make(map[uint32]bool),
		fds:        make(map[fsapi.FD]uint32),
		opens:      make(map[uint32]int),
		deltaDirty: make(map[uint32]bool),
		deltaFreed: make(map[uint32]bool),
	}
	s.clock.Set(sb.LastClock)
	if err := s.seedSpace(); err != nil {
		return nil, err
	}
	return s, nil
}

// ChecksRun returns the number of runtime checks executed, the measurable
// form of the shadow's "extensive runtime checks" property.
func (s *Shadow) ChecksRun() int64 { return s.checks }

// assert is the shadow's invariant guard: a failed check is a detected
// corruption, reported as an error, never a panic.
func (s *Shadow) assert(cond bool, format string, args ...any) error {
	s.checks++
	if cond {
		return nil
	}
	return fmt.Errorf("shadowfs: check failed: "+format+": %w", append(args, fserr.ErrCorrupt)...)
}

// readBlock reads through the overlay, validating the block number first.
func (s *Shadow) readBlock(blk uint32) ([]byte, error) {
	if err := s.assert(blk < s.sb.NumBlocks, "block %d beyond image end %d", blk, s.sb.NumBlocks); err != nil {
		return nil, err
	}
	if b, ok := s.overlay[blk]; ok {
		cp := make([]byte, disklayout.BlockSize)
		copy(cp, b)
		return cp, nil
	}
	return s.dev.ReadBlock(blk)
}

// writeBlock stores a block in the overlay — never on the device.
func (s *Shadow) writeBlock(blk uint32, data []byte, meta bool) error {
	if err := s.assert(blk != 0, "write to superblock"); err != nil {
		return err
	}
	if err := s.assert(blk < s.sb.NumBlocks, "write to block %d beyond image end", blk); err != nil {
		return err
	}
	if err := s.assert(len(data) == disklayout.BlockSize, "write of %d bytes", len(data)); err != nil {
		return err
	}
	cp := make([]byte, disklayout.BlockSize)
	copy(cp, data)
	s.overlay[blk] = cp
	if meta {
		s.meta[blk] = true
	}
	s.deltaDirty[blk] = true
	delete(s.deltaFreed, blk)
	return nil
}

// readInode loads and fully validates one inode record: range, checksum,
// pointer bounds, and allocation-bitmap agreement.
func (s *Shadow) readInode(ino uint32) (*disklayout.Inode, error) {
	if err := s.assert(ino != 0 && ino < s.sb.NumInodes, "inode %d out of range", ino); err != nil {
		return nil, err
	}
	blk, off := s.sb.InodeLoc(ino)
	b, err := s.readBlock(blk)
	if err != nil {
		return nil, err
	}
	rec, err := disklayout.DecodeInode(b[off : off+disklayout.InodeSize])
	if err != nil {
		return nil, fmt.Errorf("shadowfs: inode %d: %w", ino, err)
	}
	s.checks++
	if err := rec.ValidatePointers(s.sb); err != nil {
		return nil, fmt.Errorf("shadowfs: inode %d: %w", ino, err)
	}
	allocated, err := s.inodeBit(ino)
	if err != nil {
		return nil, err
	}
	if err := s.assert(allocated == !rec.IsFree(),
		"inode %d bitmap bit %v disagrees with record type %d", ino, allocated, rec.Type()); err != nil {
		return nil, err
	}
	return rec, nil
}

// readAllocInode additionally requires the inode to be allocated.
func (s *Shadow) readAllocInode(ino uint32) (*disklayout.Inode, error) {
	rec, err := s.readInode(ino)
	if err != nil {
		return nil, err
	}
	if err := s.assert(!rec.IsFree(), "inode %d referenced but free", ino); err != nil {
		return nil, err
	}
	return rec, nil
}

// writeInode encodes a record back into the overlayed inode table.
func (s *Shadow) writeInode(ino uint32, rec *disklayout.Inode) error {
	if err := s.assert(rec.Size >= 0 && rec.Size <= disklayout.MaxFileSize,
		"inode %d size %d", ino, rec.Size); err != nil {
		return err
	}
	if !rec.IsFree() {
		if err := rec.ValidatePointers(s.sb); err != nil {
			return fmt.Errorf("shadowfs: refusing to write inode %d: %w", ino, err)
		}
	}
	blk, off := s.sb.InodeLoc(ino)
	b, err := s.readBlock(blk)
	if err != nil {
		return err
	}
	disklayout.PutInode(b[off:], rec)
	return s.writeBlock(blk, b, true)
}

// inodeBit reads inode ino's allocation bit.
func (s *Shadow) inodeBit(ino uint32) (bool, error) {
	blk := s.sb.InodeBitmapStart + ino/disklayout.BitsPerBlock
	b, err := s.readBlock(blk)
	if err != nil {
		return false, err
	}
	return disklayout.TestBit(b, ino%disklayout.BitsPerBlock), nil
}

func (s *Shadow) setInodeBit(ino uint32, v bool) error {
	blk := s.sb.InodeBitmapStart + ino/disklayout.BitsPerBlock
	b, err := s.readBlock(blk)
	if err != nil {
		return err
	}
	bit := ino % disklayout.BitsPerBlock
	was := disklayout.TestBit(b, bit)
	if err := s.assert(was != v, "inode %d bitmap bit already %v", ino, v); err != nil {
		return err
	}
	if v {
		disklayout.SetBit(b, bit)
	} else {
		disklayout.ClearBit(b, bit)
	}
	return s.writeBlock(blk, b, true)
}

// allocInode claims an inode number: the constrained one if a constraint is
// pending (validating it is usable, per §3.2), otherwise the lowest free.
func (s *Shadow) allocInode(typ, perm uint16) (uint32, *disklayout.Inode, error) {
	var ino uint32
	if s.wantIno != 0 {
		ino = s.wantIno
		s.wantIno = 0
		if err := s.assert(ino < s.sb.NumInodes, "recorded inode %d out of range", ino); err != nil {
			return 0, nil, err
		}
		allocated, err := s.inodeBit(ino)
		if err != nil {
			return 0, nil, err
		}
		if err := s.assert(!allocated, "recorded inode %d already allocated", ino); err != nil {
			return 0, nil, err
		}
	} else {
		found := false
		for i := uint32(1); i < s.sb.NumInodes; i++ {
			allocated, err := s.inodeBit(i)
			if err != nil {
				return 0, nil, err
			}
			if !allocated {
				ino = i
				found = true
				break
			}
		}
		if !found {
			return 0, nil, fserr.ErrNoSpace
		}
	}
	// Paranoia: the record under a free bit must be a free record.
	old, err := s.readInode(ino)
	if err != nil {
		return 0, nil, err
	}
	if err := s.assert(old.IsFree(), "allocating inode %d whose record is type %d", ino, old.Type()); err != nil {
		return 0, nil, err
	}
	if err := s.setInodeBit(ino, true); err != nil {
		return 0, nil, err
	}
	rec := &disklayout.Inode{
		Mode:       disklayout.MkMode(typ, perm&disklayout.ModePermMask),
		Generation: old.Generation + 1,
	}
	return ino, rec, nil
}

// freeInode releases an inode number and writes a free record.
func (s *Shadow) freeInode(ino uint32, rec *disklayout.Inode) error {
	if err := s.setInodeBit(ino, false); err != nil {
		return err
	}
	return s.writeInode(ino, &disklayout.Inode{Generation: rec.Generation})
}

// blockBit reads a data block's allocation bit.
func (s *Shadow) blockBit(blk uint32) (bool, error) {
	bmBlk := s.sb.BlockBitmapStart + blk/disklayout.BitsPerBlock
	b, err := s.readBlock(bmBlk)
	if err != nil {
		return false, err
	}
	return disklayout.TestBit(b, blk%disklayout.BitsPerBlock), nil
}

func (s *Shadow) setBlockBit(blk uint32, v bool) error {
	bmBlk := s.sb.BlockBitmapStart + blk/disklayout.BitsPerBlock
	b, err := s.readBlock(bmBlk)
	if err != nil {
		return err
	}
	bit := blk % disklayout.BitsPerBlock
	was := disklayout.TestBit(b, bit)
	if err := s.assert(was != v, "block %d bitmap bit already %v", blk, v); err != nil {
		return err
	}
	if v {
		disklayout.SetBit(b, bit)
		s.physFree--
	} else {
		disklayout.ClearBit(b, bit)
		s.physFree++
	}
	return s.writeBlock(bmBlk, b, true)
}

// allocBlock claims the lowest free data block and returns it zeroed in the
// overlay. This is the model-charged allocator: it fails once the free count
// falls to the image's extent slack, which is exactly when the model's
// logical budget runs out (extent.go).
func (s *Shadow) allocBlock(meta bool) (uint32, error) {
	if s.physFree <= s.slack {
		return 0, fserr.ErrNoSpace
	}
	return s.allocBlockRaw(meta)
}

// allocBlockRaw is allocBlock without the slack reserve — for demotion's
// spine blocks, whose cost the model has already charged.
func (s *Shadow) allocBlockRaw(meta bool) (uint32, error) {
	for blk := s.sb.DataStart; blk < s.sb.NumBlocks; blk++ {
		used, err := s.blockBit(blk)
		if err != nil {
			return 0, err
		}
		if used {
			continue
		}
		if err := s.setBlockBit(blk, true); err != nil {
			return 0, err
		}
		if err := s.writeBlock(blk, make([]byte, disklayout.BlockSize), meta); err != nil {
			return 0, err
		}
		return blk, nil
	}
	return 0, fserr.ErrNoSpace
}

// freeBlock releases a data block, validating the region and bit state.
func (s *Shadow) freeBlock(blk uint32) error {
	if err := s.assert(blk >= s.sb.DataStart && blk < s.sb.NumBlocks,
		"freeing block %d outside data region", blk); err != nil {
		return err
	}
	used, err := s.blockBit(blk)
	if err != nil {
		return err
	}
	if err := s.assert(used, "double free of block %d", blk); err != nil {
		return err
	}
	if err := s.setBlockBit(blk, false); err != nil {
		return err
	}
	delete(s.overlay, blk)
	delete(s.meta, blk)
	delete(s.deltaDirty, blk)
	s.deltaFreed[blk] = true
	return nil
}

// readPtr loads slot i of an indirect block, validating the pointer.
func (s *Shadow) readPtr(blk uint32, i int64) (uint32, error) {
	b, err := s.readBlock(blk)
	if err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint32(b[i*4:])
	if p != 0 {
		if err := s.assert(p >= s.sb.DataStart && p < s.sb.NumBlocks,
			"indirect block %d slot %d points at %d", blk, i, p); err != nil {
			return 0, err
		}
	}
	return p, nil
}

func (s *Shadow) writePtr(blk uint32, i int64, p uint32) error {
	b, err := s.readBlock(blk)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b[i*4:], p)
	return s.writeBlock(blk, b, true)
}

// bmap resolves a file block index to a physical block (0 = hole).
func (s *Shadow) bmap(rec *disklayout.Inode, idx int64) (uint32, error) {
	if err := s.assert(idx >= 0 && idx < disklayout.MaxFileBlocks, "block index %d", idx); err != nil {
		return 0, err
	}
	if rec.IsExtents() {
		return s.extentLookup(rec, idx)
	}
	switch {
	case idx < disklayout.NumDirect:
		return rec.Direct[idx], nil
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		if rec.Indirect == 0 {
			return 0, nil
		}
		return s.readPtr(rec.Indirect, idx-disklayout.NumDirect)
	default:
		if rec.DblIndir == 0 {
			return 0, nil
		}
		rel := idx - disklayout.NumDirect - disklayout.PtrsPerBlock
		l2, err := s.readPtr(rec.DblIndir, rel/disklayout.PtrsPerBlock)
		if err != nil || l2 == 0 {
			return 0, err
		}
		return s.readPtr(l2, rel%disklayout.PtrsPerBlock)
	}
}

// bmapAlloc resolves idx, materializing the block and any indirect chain,
// rolling back on ENOSPC exactly as the base and model do.
func (s *Shadow) bmapAlloc(rec *disklayout.Inode, idx int64) (uint32, error) {
	if p, err := s.bmap(rec, idx); err != nil || p != 0 {
		return p, err
	}
	if rec.IsExtents() {
		// First write into an unmapped block of an extent file: demote it to
		// the legacy map (the shadow does not grow extent lists) and let the
		// legacy allocator below materialize the block.
		if err := s.demoteExtents(rec); err != nil {
			return 0, err
		}
	}
	var undo []uint32
	fail := func(err error) (uint32, error) {
		for i := len(undo) - 1; i >= 0; i-- {
			if ferr := s.freeBlock(undo[i]); ferr != nil {
				return 0, ferr
			}
		}
		return 0, err
	}
	alloc := func(meta bool) (uint32, error) {
		p, err := s.allocBlock(meta)
		if err == nil {
			undo = append(undo, p)
		}
		return p, err
	}
	switch {
	case idx < disklayout.NumDirect:
		p, err := alloc(false)
		if err != nil {
			return fail(err)
		}
		rec.Direct[idx] = p
		return p, nil
	case idx < disklayout.NumDirect+disklayout.PtrsPerBlock:
		newInd := false
		if rec.Indirect == 0 {
			ib, err := alloc(true)
			if err != nil {
				return fail(err)
			}
			rec.Indirect = ib
			newInd = true
		}
		p, err := alloc(false)
		if err != nil {
			if newInd {
				rec.Indirect = 0
			}
			return fail(err)
		}
		if err := s.writePtr(rec.Indirect, idx-disklayout.NumDirect, p); err != nil {
			return fail(err)
		}
		return p, nil
	default:
		rel := idx - disklayout.NumDirect - disklayout.PtrsPerBlock
		l2idx := rel / disklayout.PtrsPerBlock
		newDbl := false
		if rec.DblIndir == 0 {
			db, err := alloc(true)
			if err != nil {
				return fail(err)
			}
			rec.DblIndir = db
			newDbl = true
		}
		l2, err := s.readPtr(rec.DblIndir, l2idx)
		if err != nil {
			return fail(err)
		}
		newL2 := false
		if l2 == 0 {
			l2, err = alloc(true)
			if err != nil {
				if newDbl {
					rec.DblIndir = 0
				}
				return fail(err)
			}
			if err := s.writePtr(rec.DblIndir, l2idx, l2); err != nil {
				return fail(err)
			}
			newL2 = true
		}
		p, err := alloc(false)
		if err != nil {
			if newL2 {
				if werr := s.writePtr(rec.DblIndir, l2idx, 0); werr != nil {
					return 0, werr
				}
			}
			if newDbl {
				rec.DblIndir = 0
			}
			return fail(err)
		}
		if err := s.writePtr(l2, rel%disklayout.PtrsPerBlock, p); err != nil {
			return fail(err)
		}
		return p, nil
	}
}

// truncateBlocks frees every block at index >= keep, pruning empty indirect
// blocks.
func (s *Shadow) truncateBlocks(rec *disklayout.Inode, keep int64) error {
	if rec.IsExtents() {
		if keep <= 0 {
			return s.freeExtents(rec)
		}
		// Shrinking an extent file rewrites its mapping; demote first and
		// fall through to the legacy walk.
		if err := s.demoteExtents(rec); err != nil {
			return err
		}
	}
	for i := keep; i < disklayout.NumDirect; i++ {
		if i < 0 {
			continue
		}
		if p := rec.Direct[i]; p != 0 {
			if err := s.freeBlock(p); err != nil {
				return err
			}
			rec.Direct[i] = 0
		}
	}
	if rec.Indirect != 0 {
		empty, err := s.truncateIndirect(rec.Indirect, keep-disklayout.NumDirect)
		if err != nil {
			return err
		}
		if empty {
			if err := s.freeBlock(rec.Indirect); err != nil {
				return err
			}
			rec.Indirect = 0
		}
	}
	if rec.DblIndir != 0 {
		relKeep := keep - disklayout.NumDirect - disklayout.PtrsPerBlock
		b, err := s.readBlock(rec.DblIndir)
		if err != nil {
			return err
		}
		empty := true
		dirty := false
		for i := int64(0); i < disklayout.PtrsPerBlock; i++ {
			l2 := binary.LittleEndian.Uint32(b[i*4:])
			if l2 == 0 {
				continue
			}
			l2empty, err := s.truncateIndirect(l2, relKeep-i*disklayout.PtrsPerBlock)
			if err != nil {
				return err
			}
			if l2empty {
				if err := s.freeBlock(l2); err != nil {
					return err
				}
				binary.LittleEndian.PutUint32(b[i*4:], 0)
				dirty = true
			} else {
				empty = false
			}
		}
		if dirty {
			if err := s.writeBlock(rec.DblIndir, b, true); err != nil {
				return err
			}
		}
		if empty {
			if err := s.freeBlock(rec.DblIndir); err != nil {
				return err
			}
			rec.DblIndir = 0
		}
	}
	return nil
}

func (s *Shadow) truncateIndirect(blk uint32, keep int64) (bool, error) {
	b, err := s.readBlock(blk)
	if err != nil {
		return false, err
	}
	empty := true
	dirty := false
	for i := int64(0); i < disklayout.PtrsPerBlock; i++ {
		p := binary.LittleEndian.Uint32(b[i*4:])
		if p == 0 {
			continue
		}
		if i >= keep {
			if err := s.freeBlock(p); err != nil {
				return false, err
			}
			binary.LittleEndian.PutUint32(b[i*4:], 0)
			dirty = true
		} else {
			empty = false
		}
	}
	if dirty {
		if err := s.writeBlock(blk, b, true); err != nil {
			return false, err
		}
	}
	return empty, nil
}

// Overlay returns the blocks the shadow has produced and which of them are
// metadata. The replay driver packages these into the handoff update.
func (s *Shadow) Overlay() (blocks map[uint32][]byte, meta map[uint32]bool) {
	return s.overlay, s.meta
}

// OverlayBlocks returns the shadow's current memory footprint in blocks —
// the warm-replayer retention policy's input.
func (s *Shadow) OverlayBlocks() int { return len(s.overlay) }

// TakeDelta drains and returns the set of blocks written and freed since the
// last call. The streaming replayer turns each delta into one sealed handoff
// chunk. Freed blocks that were never previously handed off are simply
// dropped by the caller.
func (s *Shadow) TakeDelta() (dirty, freed []uint32) {
	for blk := range s.deltaDirty {
		dirty = append(dirty, blk)
	}
	for blk := range s.deltaFreed {
		freed = append(freed, blk)
	}
	s.deltaDirty = make(map[uint32]bool)
	s.deltaFreed = make(map[uint32]bool)
	return dirty, freed
}

// OpenFDs returns the shadow's descriptor table.
func (s *Shadow) OpenFDs() map[fsapi.FD]uint32 {
	out := make(map[fsapi.FD]uint32, len(s.fds))
	for fd, ino := range s.fds {
		out[fd] = ino
	}
	return out
}

// Clock returns the shadow's logical time.
func (s *Shadow) Clock() uint64 { return s.clock.Now() }

// SetClock seeds the logical clock during recovery.
func (s *Shadow) SetClock(v uint64) { s.clock.Set(v) }
