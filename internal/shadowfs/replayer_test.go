package shadowfs

import (
	"testing"

	"repro/internal/fsapi"
	"repro/internal/handoff"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// recordedTrace generates a recorded op sequence by running a workload
// against one shadow and keeping the ops with their outcomes.
func recordedTrace(t *testing.T, n int) []*oplog.Op {
	t.Helper()
	s, _, sb := freshShadow(t, 16384)
	trace := workload.Generate(workload.Config{
		Profile: workload.MetaHeavy, Seed: 7, NumOps: n, Superblock: sb,
	})
	recorded := make([]*oplog.Op, 0, len(trace))
	for i, op := range trace {
		rec := op.Clone()
		_ = oplog.Apply(s, rec)
		rec.Seq = uint64(i)
		recorded = append(recorded, rec)
	}
	return recorded
}

// TestReplayerStreamEquivalentToMonolithic drives the same recorded trace
// through (a) the one-shot Replay and (b) the incremental Replayer with a
// chunk emitted every few batches, then checks the assembled stream equals
// the monolithic update block for block.
func TestReplayerStreamEquivalentToMonolithic(t *testing.T) {
	recorded := recordedTrace(t, 400)

	mono, _, _ := freshShadow(t, 16384)
	monoRes, err := mono.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err != nil {
		t.Fatalf("monolithic Replay: %v", err)
	}

	s, _, _ := freshShadow(t, 16384)
	r := NewReplayer(s, ReplayerKey{}, true)
	if err := r.Seed(map[fsapi.FD]uint32{}, 0); err != nil {
		t.Fatal(err)
	}
	var chunks []*handoff.Chunk
	const batch = 64
	for i := 0; i < len(recorded); i += batch {
		end := i + batch
		if end > len(recorded) {
			end = len(recorded)
		}
		if err := r.Feed(recorded[i:end]); err != nil {
			t.Fatalf("Feed[%d:%d]: %v", i, end, err)
		}
		if c := r.EmitChunk(); c != nil {
			chunks = append(chunks, c)
		}
	}
	last, m, _, err := r.Finish(nil)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if last != nil {
		chunks = append(chunks, last)
	}
	if len(chunks) < 2 {
		t.Fatalf("stream produced %d chunks; want several for a meaningful test", len(chunks))
	}
	got, err := handoff.Assemble(chunks, m)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	want := monoRes.Update
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("stream carries %d blocks, monolithic %d", len(got.Blocks), len(want.Blocks))
	}
	for blk, data := range want.Blocks {
		gd, ok := got.Blocks[blk]
		if !ok {
			t.Fatalf("block %d missing from stream", blk)
		}
		if string(gd) != string(data) {
			t.Fatalf("block %d differs between stream and monolithic update", blk)
		}
		if got.Meta[blk] != want.Meta[blk] {
			t.Fatalf("block %d meta flag differs", blk)
		}
	}
	if got.Sum != want.Sum {
		t.Fatalf("assembled stream seals to %#x, monolithic to %#x", got.Sum, want.Sum)
	}
	if r.OpsReplayed() != monoRes.OpsReplayed {
		t.Errorf("replayer executed %d ops, monolithic %d", r.OpsReplayed(), monoRes.OpsReplayed)
	}
}

// TestReplayerWarmResumeReplaysOnlySuffix retains the replayer after a
// first recovery and verifies that a second recovery feeds only the new
// ops, while ResetStream makes the next stream carry the full overlay for
// the freshly rebooted base.
func TestReplayerWarmResumeReplaysOnlySuffix(t *testing.T) {
	recorded := recordedTrace(t, 300)
	first, rest := recorded[:250], recorded[250:]

	s, _, _ := freshShadow(t, 16384)
	r := NewReplayer(s, ReplayerKey{StableSeq: 0, DevGen: 1}, true)
	if err := r.Seed(map[fsapi.FD]uint32{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(first); err != nil {
		t.Fatal(err)
	}
	c1, m1, _, err := r.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := handoff.Assemble([]*handoff.Chunk{c1}, m1); err != nil {
		t.Fatalf("first stream: %v", err)
	}
	firstReplayed := r.OpsReplayed()
	if r.NextSeq() != 250 {
		t.Fatalf("NextSeq = %d after first recovery, want 250", r.NextSeq())
	}

	// Second fault: only the suffix is fed. The stream restarts at chunk 0
	// carrying the whole overlay (the new base absorbed nothing yet).
	r.ResetStream()
	if err := r.Feed(rest); err != nil {
		t.Fatal(err)
	}
	c2, m2, _, err := r.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == nil || c2.Index != 0 {
		t.Fatal("warm stream did not restart at chunk 0")
	}
	got, err := handoff.Assemble([]*handoff.Chunk{c2}, m2)
	if err != nil {
		t.Fatalf("warm stream: %v", err)
	}
	suffixReplayed := r.OpsReplayed() - firstReplayed
	if suffixReplayed > len(rest) {
		t.Errorf("warm resume replayed %d ops, gap suffix is only %d", suffixReplayed, len(rest))
	}

	// The warm result must equal a cold replay of the entire gap.
	cold, _, _ := freshShadow(t, 16384)
	coldRes, err := cold.Replay(ReplayInput{Ops: recorded, BaseFDs: map[fsapi.FD]uint32{}, StopOnDiscrepancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sum != coldRes.Update.Sum {
		t.Fatalf("warm-resumed stream seals to %#x, cold full replay to %#x", got.Sum, coldRes.Update.Sum)
	}
}

// TestReplayerMarkConsumed pins the resume-path bookkeeping: an appended
// in-flight op's seq is covered without replaying.
func TestReplayerMarkConsumed(t *testing.T) {
	s, _, _ := freshShadow(t, 4096)
	r := NewReplayer(s, ReplayerKey{}, false)
	if err := r.Seed(map[fsapi.FD]uint32{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Feed([]*oplog.Op{{Kind: oplog.KCreate, Path: "/a", Perm: 0o644, RetIno: 2, Seq: 5}}); err != nil {
		t.Fatal(err)
	}
	if r.NextSeq() != 6 {
		t.Fatalf("NextSeq = %d, want 6", r.NextSeq())
	}
	r.MarkConsumed(7)
	if r.NextSeq() != 7 {
		t.Fatalf("NextSeq = %d after MarkConsumed, want 7", r.NextSeq())
	}
	r.MarkConsumed(3) // never goes backwards
	if r.NextSeq() != 7 {
		t.Fatalf("NextSeq = %d after stale MarkConsumed, want 7", r.NextSeq())
	}
}
