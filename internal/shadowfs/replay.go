package shadowfs

import (
	"fmt"

	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/oplog"
)

// ReplayInput is everything the supervisor hands the shadow for one
// recovery: the trusted on-disk state is implicit in the device the shadow
// was constructed over (post journal replay), and the rest is the recorded
// gap between that state and what applications have observed.
type ReplayInput struct {
	// Ops is the recorded operation sequence since the last stable point,
	// with outcomes. Replayed in constrained mode.
	Ops []*oplog.Op
	// BaseFDs is the descriptor table at the stable point (fd -> inode).
	BaseFDs map[fsapi.FD]uint32
	// StartClock is the logical clock at the stable point.
	StartClock uint64
	// InFlight is the operation that faulted in the base, whose return value
	// the application has not yet seen; executed in autonomous mode. Nil if
	// the error arose outside any operation.
	InFlight *oplog.Op
	// StopOnDiscrepancy aborts recovery if constrained-mode cross-checking
	// disagrees with a recorded outcome ("whether or not to continue can be
	// configured", §3.2). When false, discrepancies are reported and the
	// shadow's own outcome wins.
	StopOnDiscrepancy bool
}

// ReplayResult is the shadow's output.
type ReplayResult struct {
	// Update carries the reconstructed metadata, buffered data blocks, the
	// final descriptor table, and the clock; sealed and ready for the base
	// to absorb.
	Update *handoffUpdate
	// InFlight is the in-flight op with its autonomous outcome filled, to be
	// returned to the application.
	InFlight *oplog.Op
	// Discrepancies are constrained-mode cross-check disagreements.
	Discrepancies []difftest.Discrepancy
	// OpsReplayed counts operations executed (skipped ones excluded).
	OpsReplayed int
	// OpsSkipped counts recorded operations omitted (error outcomes, syncs).
	OpsSkipped int
	// ChecksRun is the number of runtime checks the shadow executed.
	ChecksRun int64
	// OverlayBlocks is the number of blocks the recovery produced — the
	// shadow's memory footprint and the hand-off's payload size.
	OverlayBlocks int
}

// handoffUpdate aliases the handoff type without importing it here; see
// replay_build.go. (Kept separate so the ops files stay free of the
// packaging concern.)
type handoffUpdate = updateAlias

// Replay executes the whole recovery procedure in one call: seed the
// descriptor table from the stable point, re-execute the recorded sequence
// in constrained mode, execute the in-flight operation in autonomous mode,
// and package the overlay as one monolithic metadata update. It is the
// non-streaming convenience wrapper over Replayer, kept for tools and tests;
// the supervisor's pipelined engine drives the Replayer directly.
func (s *Shadow) Replay(in ReplayInput) (*ReplayResult, error) {
	r := NewReplayer(s, ReplayerKey{}, in.StopOnDiscrepancy)
	if err := r.Seed(in.BaseFDs, in.StartClock); err != nil {
		return nil, err
	}
	res := &ReplayResult{}
	fill := func() {
		res.Discrepancies = r.Discrepancies()
		res.OpsReplayed = r.OpsReplayed()
		res.OpsSkipped = r.OpsSkipped()
		res.ChecksRun = s.checks
		res.OverlayBlocks = len(s.overlay)
	}
	if err := r.Feed(in.Ops); err != nil {
		fill()
		return res, err
	}
	res.InFlight = r.runInFlight(in.InFlight)
	upd, err := s.buildUpdate()
	fill()
	if err != nil {
		return res, err
	}
	res.Update = upd
	return res, nil
}

// sanityCheckFinal re-validates every inode the recovery touched before the
// update leaves the shadow — the last line of the shadow's runtime checks.
func (s *Shadow) sanityCheckFinal() error {
	touched := map[uint32]bool{}
	tableStart, tableEnd := s.sb.InodeTableStart, s.sb.InodeTableStart+s.sb.InodeTableLen
	for blk := range s.overlay {
		if blk >= tableStart && blk < tableEnd {
			for i := 0; i < disklayout.InodesPerBlock; i++ {
				touched[(blk-tableStart)*disklayout.InodesPerBlock+uint32(i)] = true
			}
		}
	}
	for ino := range touched {
		if ino == 0 || ino >= s.sb.NumInodes {
			continue
		}
		if _, err := s.readInode(ino); err != nil {
			return fmt.Errorf("shadowfs: final check: %w", err)
		}
	}
	return nil
}
