package shadowfs

import (
	"fmt"

	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/oplog"
)

// ReplayInput is everything the supervisor hands the shadow for one
// recovery: the trusted on-disk state is implicit in the device the shadow
// was constructed over (post journal replay), and the rest is the recorded
// gap between that state and what applications have observed.
type ReplayInput struct {
	// Ops is the recorded operation sequence since the last stable point,
	// with outcomes. Replayed in constrained mode.
	Ops []*oplog.Op
	// BaseFDs is the descriptor table at the stable point (fd -> inode).
	BaseFDs map[fsapi.FD]uint32
	// StartClock is the logical clock at the stable point.
	StartClock uint64
	// InFlight is the operation that faulted in the base, whose return value
	// the application has not yet seen; executed in autonomous mode. Nil if
	// the error arose outside any operation.
	InFlight *oplog.Op
	// StopOnDiscrepancy aborts recovery if constrained-mode cross-checking
	// disagrees with a recorded outcome ("whether or not to continue can be
	// configured", §3.2). When false, discrepancies are reported and the
	// shadow's own outcome wins.
	StopOnDiscrepancy bool
}

// ReplayResult is the shadow's output.
type ReplayResult struct {
	// Update carries the reconstructed metadata, buffered data blocks, the
	// final descriptor table, and the clock; sealed and ready for the base
	// to absorb.
	Update *handoffUpdate
	// InFlight is the in-flight op with its autonomous outcome filled, to be
	// returned to the application.
	InFlight *oplog.Op
	// Discrepancies are constrained-mode cross-check disagreements.
	Discrepancies []difftest.Discrepancy
	// OpsReplayed counts operations executed (skipped ones excluded).
	OpsReplayed int
	// OpsSkipped counts recorded operations omitted (error outcomes, syncs).
	OpsSkipped int
	// ChecksRun is the number of runtime checks the shadow executed.
	ChecksRun int64
	// OverlayBlocks is the number of blocks the recovery produced — the
	// shadow's memory footprint and the hand-off's payload size.
	OverlayBlocks int
}

// handoffUpdate aliases the handoff type without importing it here; see
// replay_build.go. (Kept separate so the ops files stay free of the
// packaging concern.)
type handoffUpdate = updateAlias

// Replay executes the recovery procedure: seed the descriptor table from
// the stable point, re-execute the recorded sequence in constrained mode,
// execute the in-flight operation in autonomous mode, and package the
// overlay as a metadata update.
func (s *Shadow) Replay(in ReplayInput) (*ReplayResult, error) {
	res := &ReplayResult{}

	// Seed descriptors. Every inode must exist on disk, be allocated, and be
	// a regular file (directories are never held open through this API, and
	// symlinks are not openable).
	s.clock.Set(in.StartClock)
	for fd, ino := range in.BaseFDs {
		rec, err := s.readAllocInode(ino)
		if err != nil {
			return nil, fmt.Errorf("shadowfs: replay fd %d: %w", fd, err)
		}
		if err := s.assert(rec.IsFile(), "fd %d maps to non-file inode %d (type %d)",
			fd, ino, rec.Type()); err != nil {
			return nil, err
		}
		if _, dup := s.fds[fd]; dup {
			return nil, s.assert(false, "duplicate fd %d in stable-point table", fd)
		}
		s.fds[fd] = ino
		s.opens[ino]++
	}

	// Constrained mode.
	for _, rec := range in.Ops {
		if rec.Kind == oplog.KFsync || rec.Kind == oplog.KSync {
			// Completed syncs are already on disk; incomplete ones are
			// delegated back to the base after hand-off.
			res.OpsSkipped++
			continue
		}
		if rec.Errno != 0 {
			// "The shadow omits operations that returned an error by the
			// base" — except short writes, whose successfully written prefix
			// is application-visible state.
			if rec.Kind == oplog.KWrite && rec.RetN > 0 {
				partial := rec.Clone()
				partial.Data = partial.Data[:rec.RetN]
				got := partial.Clone()
				got.Errno, got.RetN = 0, 0
				_ = oplog.Apply(s, got)
				if got.RetN != rec.RetN || got.Errno != 0 {
					res.Discrepancies = append(res.Discrepancies, difftest.Discrepancy{
						Op: rec, Field: "partial-write",
						Got:  fmt.Sprintf("n=%d errno=%d", got.RetN, got.Errno),
						Want: fmt.Sprintf("n=%d errno=0", rec.RetN),
					})
					if in.StopOnDiscrepancy {
						return res, fmt.Errorf("shadowfs: constrained replay diverged at %s: %w", rec, fserr.ErrCorrupt)
					}
				}
				res.OpsReplayed++
				continue
			}
			res.OpsSkipped++
			continue
		}
		// Pin the base's allocation decisions so application-visible numbers
		// are reproduced, validating usability instead of trusting blindly.
		switch rec.Kind {
		case oplog.KCreate, oplog.KMkdir, oplog.KSymlink:
			s.wantIno = rec.RetIno
		}
		switch rec.Kind {
		case oplog.KCreate, oplog.KOpen:
			s.wantFD = rec.RetFD
			s.haveWantFD = true
		}
		got := rec.Clone()
		got.Errno, got.RetFD, got.RetIno, got.RetN = 0, 0, 0, 0
		_ = oplog.Apply(s, got)
		s.wantIno = 0
		s.haveWantFD = false
		res.OpsReplayed++
		if d := difftest.CompareOutcome(got, rec); len(d) > 0 {
			res.Discrepancies = append(res.Discrepancies, d...)
			if in.StopOnDiscrepancy {
				return res, fmt.Errorf("shadowfs: constrained replay diverged at %s: %w", rec, fserr.ErrCorrupt)
			}
		}
	}

	// Autonomous mode: the in-flight operation. The shadow now makes its own
	// policy decisions (fresh inode numbers, lowest-free descriptor).
	if in.InFlight != nil {
		fl := in.InFlight.Clone()
		fl.Errno, fl.RetFD, fl.RetIno, fl.RetN = 0, 0, 0, 0
		if fl.Kind == oplog.KFsync || fl.Kind == oplog.KSync {
			// Not handled by the shadow: the base re-runs it after hand-off.
			fl.Errno = 0
		} else {
			_ = oplog.Apply(s, fl)
		}
		res.InFlight = fl
		res.OpsReplayed++
	}

	res.ChecksRun = s.checks
	upd, err := s.buildUpdate()
	if err != nil {
		return res, err
	}
	res.Update = upd
	res.OverlayBlocks = len(upd.Blocks)
	return res, nil
}

// sanityCheckFinal re-validates every inode the recovery touched before the
// update leaves the shadow — the last line of the shadow's runtime checks.
func (s *Shadow) sanityCheckFinal() error {
	touched := map[uint32]bool{}
	tableStart, tableEnd := s.sb.InodeTableStart, s.sb.InodeTableStart+s.sb.InodeTableLen
	for blk := range s.overlay {
		if blk >= tableStart && blk < tableEnd {
			for i := 0; i < disklayout.InodesPerBlock; i++ {
				touched[(blk-tableStart)*disklayout.InodesPerBlock+uint32(i)] = true
			}
		}
	}
	for ino := range touched {
		if ino == 0 || ino >= s.sb.NumInodes {
			continue
		}
		if _, err := s.readInode(ino); err != nil {
			return fmt.Errorf("shadowfs: final check: %w", err)
		}
	}
	return nil
}
