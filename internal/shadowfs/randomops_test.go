package shadowfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/difftest"
	"repro/internal/disklayout"
	"repro/internal/fsapi"
	"repro/internal/mkfs"
	"repro/internal/model"
	"repro/internal/oplog"
)

// TestRandomOpSequencesShadowEqualsModel drives both implementations with
// raw random operation sequences — not the structured workload generator —
// including nonsense arguments, to check equivalence holds on inputs no
// profile would produce (the paper's point about inputs "often missed by
// testing frameworks").
func TestRandomOpSequencesShadowEqualsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := blockdev.NewMem(1024)
		sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 128, JournalBlocks: 16})
		if err != nil {
			return false
		}
		sh, err := New(dev, Options{SkipFsck: true})
		if err != nil {
			return false
		}
		m := model.New(sb)
		names := []string{"/", "/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep", "", "relative", "/a//x/."}
		for i := 0; i < 120; i++ {
			op := &oplog.Op{Kind: oplog.Kind(rng.Intn(17))}
			op.Path = names[rng.Intn(len(names))]
			op.Path2 = names[rng.Intn(len(names))]
			op.FD = fsapi.FD(rng.Intn(6))
			op.Perm = uint16(rng.Intn(0o1000))
			op.Off = rng.Int63n(3 * disklayout.BlockSize)
			op.Size = rng.Int63n(2 * disklayout.BlockSize)
			if op.Kind == oplog.KWrite {
				op.Data = make([]byte, rng.Intn(512))
				rng.Read(op.Data)
			}
			oracle := op.Clone()
			_ = oplog.Apply(m, oracle)
			got := op.Clone()
			_ = oplog.Apply(sh, got)
			if len(difftest.CompareOutcome(got, oracle)) != 0 {
				t.Logf("seed %d op %d: %s vs %s", seed, i, got, oracle)
				return false
			}
		}
		gotState, err := difftest.DumpState(sh)
		if err != nil {
			t.Logf("seed %d: dump shadow: %v", seed, err)
			return false
		}
		wantState, err := difftest.DumpState(m)
		if err != nil {
			t.Logf("seed %d: dump model: %v", seed, err)
			return false
		}
		if d := difftest.CompareStates(gotState, wantState); len(d) != 0 {
			t.Logf("seed %d: %s", seed, d[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
