package shadowfs

import (
	"math/rand"
	"testing"

	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/disklayout"
	"repro/internal/fsck"
	"repro/internal/mkfs"
	"repro/internal/oplog"
	"repro/internal/workload"
)

// populatedDev builds an image via a base-FS workload and clean unmount.
func populatedDev(t *testing.T, seed int64) (*blockdev.Mem, *disklayout.Superblock) {
	t.Helper()
	dev := blockdev.NewMem(4096)
	sb, err := mkfs.Format(dev, mkfs.Options{NumInodes: 512, JournalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := basefs.Mount(dev, basefs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Generate(workload.Config{
		Profile: workload.Soup, Seed: seed, NumOps: 300, Superblock: sb,
	})
	for _, op := range trace {
		o := op.Clone()
		o.Errno, o.RetFD, o.RetIno, o.RetN = 0, 0, 0, 0
		_ = oplog.Apply(fs, o)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	return dev, sb
}

// TestMutationFuzzCheckerShieldsShadow mutates valid populated images at
// random and requires that (a) fsck never panics, and (b) whenever fsck
// accepts an image, the shadow can traverse all of it without faulting —
// the "verified FSCK" obligation of §4.3: no image the checker accepts may
// crash the shadow.
func TestMutationFuzzCheckerShieldsShadow(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		dev, sb := populatedDev(t, int64(trial%7)+1)
		nMut := 1 + rng.Intn(4)
		for m := 0; m < nMut; m++ {
			blk := uint32(rng.Intn(int(sb.DataStart + 64)))
			off := rng.Intn(disklayout.BlockSize)
			if err := dev.CorruptBlock(blk, off, byte(1<<rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
		}
		rep := fsck.Check(dev) // must not panic
		if !rep.Clean() {
			continue // detected: the shadow will never see this image
		}
		sh, err := New(dev, Options{SkipFsck: true})
		if err != nil {
			t.Fatalf("trial %d: fsck clean but shadow constructor failed: %v", trial, err)
		}
		if err := walkAll(sh, "/"); err != nil {
			t.Fatalf("trial %d: fsck clean but shadow traversal failed: %v", trial, err)
		}
	}
}

func walkAll(sh *Shadow, path string) error {
	st, err := sh.Stat(path)
	if err != nil {
		return err
	}
	switch disklayout.ModeType(st.Mode) {
	case disklayout.TypeSym:
		_, err := sh.Readlink(path)
		return err
	case disklayout.TypeFile:
		fd, err := sh.Open(path)
		if err != nil {
			return err
		}
		if _, err := sh.ReadAt(fd, 0, int(st.Size)); err != nil {
			_ = sh.Close(fd)
			return err
		}
		return sh.Close(fd)
	}
	ents, err := sh.Readdir(path)
	if err != nil {
		return err
	}
	for _, e := range ents {
		child := path + "/" + e.Name
		if path == "/" {
			child = "/" + e.Name
		}
		if err := walkAll(sh, child); err != nil {
			return err
		}
	}
	return nil
}
