package shadowfs

import (
	"sort"

	"repro/internal/handoff"
)

// updateAlias keeps the replay code readable while the packaging lives here.
type updateAlias = handoff.Update

// buildUpdate packages the overlay and descriptor table into a sealed
// handoff update, running the shadow's final self-checks first.
func (s *Shadow) buildUpdate() (*handoff.Update, error) {
	if err := s.sanityCheckFinal(); err != nil {
		return nil, err
	}
	u := handoff.NewUpdate()
	for blk, data := range s.overlay {
		cp := make([]byte, len(data))
		copy(cp, data)
		u.Blocks[blk] = cp
		if s.meta[blk] {
			u.Meta[blk] = true
		}
	}
	var fds []handoff.FDEntry
	for fd, ino := range s.fds {
		fds = append(fds, handoff.FDEntry{FD: fd, Ino: ino})
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i].FD < fds[j].FD })
	u.FDs = fds
	u.Clock = s.clock.Now()
	u.Seal()
	return u, nil
}
