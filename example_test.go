package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the headline behavior: a deterministic crash bug in
// the base filesystem is invisible to the application.
func Example() {
	dev := repro.NewMemDevice(4096)
	if _, err := repro.Format(dev); err != nil {
		panic(err)
	}

	// Plant a deterministic kernel-panic-style bug in every mkdir of a
	// path containing "mail".
	bugs := repro.NewFaultRegistry(1)
	bugs.Arm(&repro.FaultSpecimen{
		ID: "example-bug", Class: repro.BugCrash,
		Deterministic: true, Op: "mkdir", PathSubstr: "mail",
	})

	fs, err := repro.Mount(dev, repro.Config{Base: repro.BaseOptions{Injector: bugs}})
	if err != nil {
		panic(err)
	}
	if err := fs.Mkdir("/mailboxes", 0o755); err != nil {
		panic(err) // never happens: the shadow masks the panic
	}
	fd, err := fs.Create("/mailboxes/inbox", 0o644)
	if err != nil {
		panic(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("you've got mail")); err != nil {
		panic(err)
	}
	data, _ := fs.ReadAt(fd, 0, 64)
	st := fs.Stats()
	fmt.Printf("content: %s\n", data)
	fmt.Printf("recoveries: %d, app-visible failures: %d\n", st.Recoveries, st.AppFailures)
	// Output:
	// content: you've got mail
	// recoveries: 1, app-visible failures: 0
}
