package repro_test

import (
	"fmt"
	"io/fs"

	"repro"
)

// Example demonstrates the headline behavior: a deterministic crash bug in
// the base filesystem is invisible to the application.
func Example() {
	dev := repro.NewMemDevice(4096)
	if _, err := repro.Format(dev); err != nil {
		panic(err)
	}

	// Plant a deterministic kernel-panic-style bug in every mkdir of a
	// path containing "mail".
	bugs := repro.NewFaultRegistry(1)
	bugs.Arm(&repro.FaultSpecimen{
		ID: "example-bug", Class: repro.BugCrash,
		Deterministic: true, Op: "mkdir", PathSubstr: "mail",
	})

	fs, err := repro.Mount(dev, repro.Config{Base: repro.BaseOptions{Injector: bugs}})
	if err != nil {
		panic(err)
	}
	if err := fs.Mkdir("/mailboxes", 0o755); err != nil {
		panic(err) // never happens: the shadow masks the panic
	}
	fd, err := fs.Create("/mailboxes/inbox", 0o644)
	if err != nil {
		panic(err)
	}
	if _, err := fs.WriteAt(fd, 0, []byte("you've got mail")); err != nil {
		panic(err)
	}
	data, _ := fs.ReadAt(fd, 0, 64)
	st := fs.Stats()
	fmt.Printf("content: %s\n", data)
	fmt.Printf("recoveries: %d, app-visible failures: %d\n", st.Recoveries, st.AppFailures)
	// Output:
	// content: you've got mail
	// recoveries: 1, app-visible failures: 0
}

// ExampleStdFS shows the standard io/fs frontend: a supervised filesystem
// driven through os-style write calls and walked with fs.WalkDir, exactly as
// any stdlib-compatible code would.
func ExampleStdFS() {
	dev := repro.NewMemDevice(4096)
	if _, err := repro.Format(dev); err != nil {
		panic(err)
	}
	sup, err := repro.Mount(dev, repro.Config{})
	if err != nil {
		panic(err)
	}

	std := repro.StdFS(sup)
	if err := std.MkdirAll("notes/2026", 0o755); err != nil {
		panic(err)
	}
	if err := std.WriteFile("notes/2026/august.md", []byte("# august\n"), 0o644); err != nil {
		panic(err)
	}
	data, err := fs.ReadFile(std, "notes/2026/august.md")
	if err != nil {
		panic(err)
	}
	fmt.Printf("content: %s", data)
	_ = fs.WalkDir(std, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(path)
		return nil
	})
	// Output:
	// content: # august
	// .
	// notes
	// notes/2026
	// notes/2026/august.md
}
