// Package repro is a complete Go reproduction of "Shadow Filesystems:
// Recovering from Filesystem Runtime Errors via Robust Alternative
// Execution" (HotStorage '24): a performance-oriented base filesystem
// paired with a simple, check-everything shadow filesystem that shares its
// API and on-disk format, under a supervisor that masks detected runtime
// errors — including deterministic bugs — via contained reboot, shadow
// re-execution, and metadata hand-off.
//
// This package is the public facade over the implementation in internal/:
// it re-exports what a downstream user needs to format a device, mount a
// supervised filesystem, plant test faults, and inspect recoveries. The
// architecture, substitutions versus the paper, and per-experiment index
// live in DESIGN.md and EXPERIMENTS.md.
//
// Quickstart:
//
//	dev := repro.NewMemDevice(16384)                // 64 MiB in-memory disk
//	if _, err := repro.Format(dev); err != nil { ... }
//	fs, err := repro.Mount(dev, repro.Config{})     // RAE-supervised
//	fd, _ := fs.Create("/hello", 0o644)
//	fs.WriteAt(fd, 0, []byte("world"))
//	fs.Close(fd)
//	fs.Sync()
//	fs.Unmount()
//
// fs implements FileSystem; so do the raw base filesystem, the shadow, and
// the executable specification model, which is what makes the differential
// verification in this repository possible.
package repro

import (
	"repro/internal/basefs"
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/disklayout"
	"repro/internal/faultinject"
	"repro/internal/fsapi"
	"repro/internal/fsck"
	"repro/internal/fswire"
	"repro/internal/mkfs"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// FileSystem is the operation interface shared by every implementation in
// this repository (supervised, base, shadow, model). See fsapi.FS for the
// full semantics contract.
type FileSystem = fsapi.FS

// FD is an application-visible file descriptor number.
type FD = fsapi.FD

// Stat describes an inode.
type Stat = fsapi.Stat

// DirEntry is one name in a directory listing.
type DirEntry = fsapi.DirEntry

// Device is the block-device interface filesystems mount on.
type Device = blockdev.Device

// FS is the RAE-supervised filesystem.
type FS = core.FS

// Config tunes the supervisor; the zero value is a sensible default
// (RAE mode, WARNs logged but not escalated, no watchdog).
type Config = core.Config

// BaseOptions tunes the base filesystem instances the supervisor mounts
// (cache sizes, extra checks, the fault injector); set via Config.Base.
type BaseOptions = basefs.Options

// Mode selects the failure-handling strategy (RAE or a baseline).
type Mode = core.Mode

// Failure-handling strategies.
const (
	// ModeRAE is the paper's system: contained reboot + shadow re-execution.
	ModeRAE = core.ModeRAE
	// ModeCrashRestart is the status-quo baseline.
	ModeCrashRestart = core.ModeCrashRestart
	// ModeNaiveReplay is the Membrane-style re-execution baseline.
	ModeNaiveReplay = core.ModeNaiveReplay
)

// Stats aggregates supervisor activity (recoveries, contained panics,
// downtime, per-recovery phase breakdowns).
type Stats = core.Stats

// Telemetry is the always-on observability sink: sharded counters, gauges,
// latency histograms, a bounded event journal, and per-recovery phase
// traces. Every supervised mount feeds one (the process-global
// DefaultTelemetry unless Config.Telemetry overrides it or
// Config.NoTelemetry opts out); query it via FS.Telemetry().
type Telemetry = telemetry.Sink

// TelemetrySnapshot is a point-in-time export of a sink's metrics, events,
// and recovery traces, serializable as JSON or human-readable text.
type TelemetrySnapshot = telemetry.Snapshot

// RecoveryTrace is one completed recovery's per-phase breakdown: one span
// for each of the six canonical phases (detect, fence, reboot, shadow-exec,
// handoff, resume), the trigger class, the op-log length at detection, and
// the outcome.
type RecoveryTrace = telemetry.TraceSnapshot

// TelemetryEvent is one entry in the bounded event journal (WARNs, panics,
// fault-injection firings, recovery outcomes, degradations).
type TelemetryEvent = telemetry.Event

// RecoveryPhaseNames returns the six canonical recovery phase names in
// execution order.
func RecoveryPhaseNames() []string { return telemetry.Phases() }

// NewTelemetry creates an isolated observability sink, for callers that
// want per-mount metrics instead of the process-global default.
func NewTelemetry() *Telemetry { return telemetry.New() }

// DefaultTelemetry returns the process-global sink that supervised mounts
// feed by default.
func DefaultTelemetry() *Telemetry { return telemetry.Default() }

// FaultRegistry is an armable registry of bug specimens for fault-injection
// experiments; pass it via Config.Base.Injector.
type FaultRegistry = faultinject.Registry

// FaultSpecimen is one plantable bug (class, trigger, determinism).
type FaultSpecimen = faultinject.Specimen

// NewFaultRegistry creates a registry with a deterministic seed.
func NewFaultRegistry(seed int64) *FaultRegistry { return faultinject.NewRegistry(seed) }

// Bug consequence classes, mirroring the paper's Table 1 taxonomy.
const (
	// BugCrash panics inside the filesystem operation.
	BugCrash = faultinject.Crash
	// BugWarn emits a kernel-style WARN and continues.
	BugWarn = faultinject.Warn
	// BugSilentCorrupt scribbles on in-flight metadata without a symptom.
	BugSilentCorrupt = faultinject.SilentCorrupt
	// BugFreeze blocks the operation (deadlock/livelock).
	BugFreeze = faultinject.Freeze
	// BugErrReturn makes the operation return a spurious EIO.
	BugErrReturn = faultinject.ErrReturn
)

// NewMemDevice creates a zero-filled in-memory block device of n 4 KiB
// blocks.
func NewMemDevice(n uint32) *blockdev.Mem { return blockdev.NewMem(n) }

// OpenFileDevice opens (or creates) a file-backed block device.
func OpenFileDevice(path string, blocks uint32, create bool) (*blockdev.File, error) {
	return blockdev.OpenFile(path, blocks, create)
}

// Format writes a fresh filesystem across the device with default geometry
// and returns its superblock.
func Format(dev Device) (*disklayout.Superblock, error) {
	return mkfs.Format(dev, mkfs.Options{})
}

// Mount brings up an RAE-supervised filesystem over a formatted device.
func Mount(dev Device, cfg Config) (*FS, error) { return core.Mount(dev, cfg) }

// Check runs the shadow-grade structural checker over an image and returns
// its report.
func Check(dev Device) *fsck.Report { return fsck.Check(dev) }

// BlockSize is the filesystem's block size in bytes.
const BlockSize = disklayout.BlockSize

// StdFS wraps any FileSystem — supervised, base, shadow, model, a volmgr
// tenant, or a remote fswire client — as Go's standard io/fs filesystem
// (fs.FS, fs.ReadDirFS, fs.StatFS, fs.ReadFileFS) with a write-side
// extension (OpenFile, Create, Mkdir, WriteFile, ...). Code written against
// the standard library — fs.WalkDir, testing/fstest, template loaders — runs
// unchanged over a supervised volume; errors satisfy errors.Is against both
// this repository's taxonomy and the io/fs sentinels.
func StdFS(fs FileSystem) *vfs.FS { return vfs.New(fs) }

// DialFS connects to an fsserve/volserve endpoint and attaches to a volume,
// returning a remote FileSystem that speaks the fswire protocol. Combine
// with StdFS for a standard-library view of a served volume.
func DialFS(addr, volume string) (*fswire.Client, error) { return fswire.Dial(addr, volume) }
